"""Boot, drive, and tear down a live N-node overlay on localhost UDP.

:class:`LiveDeployment` is the live counterpart of
:class:`repro.workloads.experiment.Deployment`: it assembles the *same*
protocol stack — :class:`~repro.overlay.node.OverlayNode`, Proof-of-
Receipt links, priority + reliable messaging, link-state routing over an
administrator-signed MTMW — but wires every node to a real UDP socket
(:mod:`repro.runtime.transport`) driven by a real asyncio event loop
(:class:`~repro.runtime.scheduler.AsyncioScheduler`).  No protocol logic
is forked: the only substitution is the substrate behind the
Clock/Scheduler/Transport seam (:mod:`repro.runtime.interfaces`).

One :class:`NodeProcess` per overlay node owns the node's socket, its
:class:`~repro.sim.stats.StatsRegistry` (so telemetry is collected *per
node*, as a real deployment would), and its PoR endpoints.  Traffic is
injected by the stock :class:`repro.workloads.traffic.CbrTraffic`
generators — they only use the ``sim`` / ``node()`` duck type, so they
drive wall-clock runs unchanged.

Shutdown is graceful on both timeout and SIGINT: traffic stops, the run
drains in-flight messages, every scheduled callback is cancelled, and
all sockets close before the report is built.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.clients.generators import ClientTier, ClientWorkloadConfig
from repro.clients.session import SessionTier, SessionWorkloadConfig
from repro.crypto.pki import Pki
from repro.errors import ConfigurationError, LiveRuntimeError
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import ChaosSpec, FaultSchedule
from repro.link.por import PorEndpoint
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.node import OverlayNode
from repro.runtime.chaos import (
    ChaosUdpTransport,
    DatagramFaultInjector,
    LiveChaosEngine,
)
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.supervision import NodeSupervisor, SupervisionConfig
from repro.runtime.transport import AsyncioUdpTransport
from repro.sim.stats import StatsRegistry
from repro.topology import generators
from repro.topology.graph import NodeId, Topology
from repro.topology.mtmw import Mtmw
from repro.workloads.traffic import CbrTraffic

#: Cap on recorded runtime errors: a poisoned receive handler fires per
#: datagram, and an unbounded error list would dwarf the report.
MAX_RUNTIME_ERRORS = 50

#: ``LiveConfig.chaos_preset`` values -> schedule factories.
CHAOS_PRESETS = {
    "link": ChaosSpec.link_level,
    "full": ChaosSpec.full,
    "soak": ChaosSpec.live_soak,
}


@dataclass(frozen=True)
class LiveConfig:
    """Tunables of a live localhost run.

    ``duration`` covers injection plus a trailing ``drain`` window during
    which no new traffic is offered so in-flight messages can land (the
    delivery ratio is measured over everything injected).
    """

    nodes: int = 4
    duration: float = 5.0
    seed: int = 0
    method: DisseminationMethod = field(default_factory=DisseminationMethod.flooding)
    rate_msgs_per_sec: float = 20.0
    size_bytes: int = 256
    host: str = "127.0.0.1"
    drain: float = 1.5
    overlay: OverlayConfig = field(default_factory=OverlayConfig)
    #: When set, every flow injects exactly this many messages and then
    #: stops on its own (the sim-vs-live conformance test uses this to
    #: offer the identical message set to both substrates).
    messages_per_flow: Optional[int] = None
    #: False disables the built-in CBR flow plan entirely (a scripted or
    #: client-tier driver offers the load instead).
    flow_traffic: bool = True
    #: When set, a :class:`~repro.clients.generators.ClientTier`
    #: population workload (diurnal Poisson arrivals, Zipf fan-in,
    #: heavy-tailed bursts) runs on top of — or instead of — the flow
    #: plan, offered through each node's admission stage when
    #: ``overlay.admission`` is configured.
    clients: Optional[ClientWorkloadConfig] = None
    #: When set, a :class:`~repro.clients.session.SessionTier` — the
    #: client-side reliability state machine (deadlines, budgeted
    #: retries, idempotency keys + destination dedup, ingress failover
    #: behind circuit breakers) — runs its request/ack workload over
    #: the live wire path.  The tier's client-visible outcome
    #: accounting lands in ``report().sessions``.
    sessions: Optional[SessionWorkloadConfig] = None
    #: An explicit fault schedule to inject (wins over ``chaos_preset``).
    chaos: Optional[FaultSchedule] = None
    #: Or a named :class:`~repro.faults.schedule.ChaosSpec` preset
    #: ("link", "full", "soak") generated over the run's inject window
    #: from the run seed.
    chaos_preset: Optional[str] = None
    chaos_intensity: float = 1.0
    #: Restart policy for the always-on node supervisor.
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)
    #: Proactive-recovery mode: ``None`` (no rotation), ``"fixed"``
    #: (staggered schedule through the defense engine's baseline path),
    #: or ``"adaptive"`` (belief-driven feedback controller).  The
    #: cadence comes from ``overlay.defense`` (recovery_period /
    #: recovery_downtime).
    recovery: Optional[str] = None
    #: Arm the sim's InvariantMonitor (dedup / ordering / quarantine
    #: routing) against the live deployment.
    monitor_invariants: bool = True
    invariant_check_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigurationError("a live overlay needs at least 2 nodes")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.rate_msgs_per_sec <= 0:
            raise ConfigurationError("rate must be positive")
        if self.size_bytes < 1:
            raise ConfigurationError("size_bytes must be >= 1")
        if self.messages_per_flow is not None and self.messages_per_flow < 1:
            raise ConfigurationError("messages_per_flow must be >= 1 when set")
        if self.chaos_preset is not None and self.chaos_preset not in CHAOS_PRESETS:
            raise ConfigurationError(
                f"unknown chaos preset {self.chaos_preset!r} "
                f"(known: {', '.join(sorted(CHAOS_PRESETS))})"
            )
        if self.chaos is not None and self.chaos_preset is not None:
            raise ConfigurationError(
                "set either an explicit chaos schedule or a preset, not both"
            )
        if self.chaos_intensity <= 0:
            raise ConfigurationError("chaos_intensity must be positive")
        if self.recovery not in (None, "fixed", "adaptive"):
            raise ConfigurationError(
                f"recovery must be None, 'fixed', or 'adaptive' "
                f"(got {self.recovery!r})"
            )
        if self.invariant_check_interval <= 0:
            raise ConfigurationError("invariant_check_interval must be positive")

    @property
    def inject_seconds(self) -> float:
        """How long traffic is offered before the drain window."""
        return max(self.duration - min(self.drain, 0.4 * self.duration), 0.1)


class NodeProcess:
    """One live overlay node: socket, stats registry, protocol stack."""

    def __init__(
        self,
        node_id: NodeId,
        scheduler: AsyncioScheduler,
        transport: AsyncioUdpTransport,
        overlay: OverlayNode,
        stats: StatsRegistry,
    ):
        self.node_id = node_id
        self.scheduler = scheduler
        self.transport = transport
        self.overlay = overlay
        self.stats = stats

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) this node's UDP socket is bound to."""
        return self.transport.local_address

    def snapshot(self) -> Dict[str, Any]:
        """This node's full telemetry snapshot (counters, meters, series)."""
        return self.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeProcess({self.node_id!r} @ {self.transport.local_address})"


@dataclass
class FlowOutcome:
    """Per-flow delivery outcome of a live run."""

    source: NodeId
    dest: NodeId
    semantics: str
    sent: int
    delivered: int
    mean_latency: Optional[float]

    @property
    def ratio(self) -> float:
        return 1.0 if self.sent == 0 else self.delivered / self.sent


@dataclass
class LiveReport:
    """Aggregate outcome of one live run (JSON-serializable)."""

    nodes: int
    duration: float
    seed: int
    method: str
    interrupted: bool
    wall_seconds: float
    flows: List[FlowOutcome]
    per_node: Dict[str, Dict[str, Any]]
    transport: Dict[str, int]
    runtime_errors: List[str]
    #: Chaos/supervision/invariant summaries; None when that machinery
    #: was not armed for the run.
    chaos: Optional[Dict[str, Any]] = None
    supervision: Optional[Dict[str, Any]] = None
    invariants: Optional[Dict[str, Any]] = None
    #: Adaptive-defense summary; None when no defense controller ran.
    adaptive: Optional[Dict[str, Any]] = None
    #: Client-tier offer accounting + aggregated per-node admission
    #: counters; None when neither a client tier nor an admission stage
    #: was configured.
    admission: Optional[Dict[str, Any]] = None
    #: Session-tier client-visible outcome accounting (success ratio,
    #: retry amplification, failovers, invariant violations); None when
    #: no session tier was configured.
    sessions: Optional[Dict[str, Any]] = None
    #: Set when a node-attributed runtime failure occurred (a raising
    #: receive handler, an unhandled loop exception): the run's results
    #: are suspect even if delivery looks fine.
    failed: bool = False

    def _ratio(self, semantics: Optional[str] = None) -> float:
        flows = [
            f for f in self.flows if semantics is None or f.semantics == semantics
        ]
        sent = sum(f.sent for f in flows)
        delivered = sum(f.delivered for f in flows)
        return 1.0 if sent == 0 else delivered / sent

    @property
    def delivery_ratio(self) -> float:
        """Delivered / injected over every flow."""
        return self._ratio()

    @property
    def priority_ratio(self) -> float:
        return self._ratio(Semantics.PRIORITY.value)

    @property
    def reliable_ratio(self) -> float:
        return self._ratio(Semantics.RELIABLE.value)

    @property
    def faulted_node_ids(self) -> set:
        """Nodes (as strings) that crashed or sat inside a partition side
        during the run — the non-correct endpoints a delivery gate must
        not hold the overlay accountable for."""
        faulted: set = set()
        if self.supervision:
            faulted.update(self.supervision.get("crashed_nodes", ()))
        if self.chaos:
            faulted.update(self.chaos.get("faulted_nodes", ()))
        return faulted

    @property
    def correct_flows(self) -> List[FlowOutcome]:
        """Flows between nodes that stayed correct the whole run."""
        faulted = self.faulted_node_ids
        return [
            f for f in self.flows
            if str(f.source) not in faulted and str(f.dest) not in faulted
        ]

    @property
    def correct_flow_ratio(self) -> float:
        """Delivered / injected over flows between correct nodes — the
        paper's guarantee (and the soak gate) is about these; flows whose
        endpoint lost state or connectivity wholesale are reported but
        not gated."""
        flows = self.correct_flows
        sent = sum(f.sent for f in flows)
        delivered = sum(f.delivered for f in flows)
        return 1.0 if sent == 0 else delivered / sent

    @property
    def violations(self) -> int:
        return self.invariants.get("violations", 0) if self.invariants else 0

    @property
    def ok(self) -> bool:
        """No runtime failures and no invariant violations."""
        return not self.failed and not self.runtime_errors and self.violations == 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (written by ``repro live --output``)."""
        return {
            "nodes": self.nodes,
            "duration": self.duration,
            "seed": self.seed,
            "method": self.method,
            "interrupted": self.interrupted,
            "wall_seconds": self.wall_seconds,
            "delivery_ratio": self.delivery_ratio,
            "priority_ratio": self.priority_ratio,
            "reliable_ratio": self.reliable_ratio,
            "flows": [
                {
                    "source": f.source,
                    "dest": f.dest,
                    "semantics": f.semantics,
                    "sent": f.sent,
                    "delivered": f.delivered,
                    "ratio": f.ratio,
                    "mean_latency": f.mean_latency,
                }
                for f in self.flows
            ],
            "per_node": self.per_node,
            "transport": self.transport,
            "runtime_errors": self.runtime_errors,
            "correct_flow_ratio": self.correct_flow_ratio,
            "faulted_nodes": sorted(self.faulted_node_ids),
            "chaos": self.chaos,
            "supervision": self.supervision,
            "invariants": self.invariants,
            "adaptive": self.adaptive,
            "admission": self.admission,
            "sessions": self.sessions,
            "failed": self.failed,
            "ok": self.ok,
        }


def flow_plan(node_ids: List[NodeId]) -> List[Tuple[NodeId, NodeId, Semantics]]:
    """The deployment's traffic matrix: one CBR flow per node, aimed
    roughly across the overlay, alternating priority/reliable semantics.

    Factored out so the sim-vs-live conformance test can offer the
    *identical* flow set to an :class:`~repro.overlay.network.OverlayNetwork`
    and a :class:`LiveDeployment`.
    """
    n = len(node_ids)
    plan: List[Tuple[NodeId, NodeId, Semantics]] = []
    for index, source in enumerate(node_ids):
        dest = node_ids[(index + max(1, n // 2)) % n]
        if dest == source:
            continue
        semantics = Semantics.PRIORITY if index % 2 == 0 else Semantics.RELIABLE
        plan.append((source, dest, semantics))
    return plan


def live_topology(n: int) -> Topology:
    """The localhost lab topology: small cliques, chordal rings beyond.

    Weights are 1 ms — routing needs *some* administrator-signed minimum
    weight, but real latency on loopback is what it is.
    """
    if n <= 4:
        return generators.clique(n, weight=0.001)
    return generators.chordal_ring(n, chords=2, weight=0.001)


class LiveDeployment:
    """A fully wired live overlay on localhost (see module docstring).

    Usage (inside a running event loop)::

        deployment = LiveDeployment(LiveConfig(nodes=4, duration=5.0))
        await deployment.start()
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        report = deployment.report()

    Or synchronously: :func:`run_live`.
    """

    def __init__(self, config: Optional[LiveConfig] = None):
        self.config = config or LiveConfig()
        self.topology = live_topology(self.config.nodes)
        self.scheduler: Optional[AsyncioScheduler] = None
        self.pki: Optional[Pki] = None
        self.mtmw: Optional[Mtmw] = None
        self.processes: Dict[NodeId, NodeProcess] = {}
        self.traffic: List[CbrTraffic] = []
        self._flow_specs: List[Tuple[NodeId, NodeId, Semantics]] = []
        self.client_tier: Optional[ClientTier] = None
        self.session_tier: Optional[SessionTier] = None
        self._interrupted = False
        self._started_at: Optional[float] = None
        self._stopped = False
        self._runtime_errors: List[str] = []
        self._errors_dropped = 0
        self._failed = False
        # Fault machinery (wired in start()).
        self.supervisor: Optional[NodeSupervisor] = None
        self.monitor: Optional[InvariantMonitor] = None
        self.injector: Optional[DatagramFaultInjector] = None
        self.chaos_engine: Optional[LiveChaosEngine] = None
        self.chaos_schedule: Optional[FaultSchedule] = None
        self.defense: Optional[Any] = None

    # ------------------------------------------------------------------
    # Duck-type parity with OverlayNetwork / Deployment
    # ------------------------------------------------------------------
    @property
    def sim(self) -> AsyncioScheduler:
        """The shared scheduler (named ``sim`` for generator duck-typing)."""
        if self.scheduler is None:
            raise LiveRuntimeError("deployment not started")
        return self.scheduler

    def node(self, node_id: NodeId) -> OverlayNode:
        """The overlay node for ``node_id`` (generator duck-typing)."""
        return self.processes[node_id].overlay

    @property
    def nodes(self) -> Dict[NodeId, OverlayNode]:
        """Overlay nodes keyed by id (InvariantMonitor duck-typing)."""
        return {
            node_id: process.overlay
            for node_id, process in self.processes.items()
        }

    @property
    def stats(self) -> StatsRegistry:
        """The deployment-wide registry (ChaosEngine duck-typing): the
        first node's, by the same convention the shared PKI uses."""
        if not self.processes:
            raise LiveRuntimeError("deployment not started")
        return self.processes[min(self.processes, key=str)].stats

    def crash(self, node_id: NodeId) -> None:
        """Lose a node's overlay soft state (supervisor kill path).
        Plain instance method so an armed InvariantMonitor can wrap it
        exactly as it wraps :meth:`OverlayNetwork.crash`."""
        self.processes[node_id].overlay.crash()

    def recover(self, node_id: NodeId) -> None:
        """Re-initialize a node's overlay state after a restart."""
        self.processes[node_id].overlay.recover()

    def announce_restart(self, node_id: NodeId, address: Any) -> None:
        """Supervisor hook after a node rebinds.  All neighbors live in
        this process for a single-loop deployment, so the supervisor's
        direct re-pointing already covered them; a sharded cluster
        deployment overrides this to relay the new address to remote
        shards over the control plane."""

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind sockets, wire links, arm timers, and start traffic.

        Partial-failure safe: if any node's bind or link wiring fails,
        everything already started is torn down (via the idempotent
        :meth:`stop`) before the error propagates — a failed boot never
        leaks bound sockets or armed timers.
        """
        if self.scheduler is not None:
            raise LiveRuntimeError("deployment already started")
        try:
            await self._boot()
        except BaseException:
            await self.stop()
            raise

    async def _boot(self) -> None:
        config = self.config
        loop = asyncio.get_event_loop()
        loop.set_exception_handler(self._on_loop_exception)
        self.scheduler = AsyncioScheduler(seed=config.seed, loop=loop)
        self.pki = Pki(mode=config.overlay.crypto.pki_mode, seed=config.seed)
        for node_id in self.topology.nodes:
            self.pki.register(node_id)
        self.mtmw = Mtmw.create(self.topology, self.pki)
        self.chaos_schedule = self._resolve_chaos()
        if self.chaos_schedule is not None:
            self.injector = DatagramFaultInjector(
                self.scheduler.rngs.stream("live-chaos")
            )

        # Phase 1: bind every node's socket (ephemeral ports: the OS
        # guarantees no collisions, and the MTMW does not care about
        # port numbers).
        for node_id in sorted(self.topology.nodes):
            stats = StatsRegistry(self.scheduler)
            if not self.processes:
                # The PKI is shared process-wide, so its crypto-op
                # counters can only live in one registry; credit them to
                # the first node (attach_metrics replaces, not adds).
                self.pki.attach_metrics(stats.metrics)
            if self.injector is not None:
                transport: AsyncioUdpTransport = await ChaosUdpTransport.open(
                    node_id, host=config.host, metrics=stats.metrics,
                    injector=self.injector,
                )
            else:
                transport = await AsyncioUdpTransport.open(
                    node_id, host=config.host, metrics=stats.metrics
                )
            transport.on_dispatch_error = (
                lambda exc, _node=node_id: self._on_dispatch_error(_node, exc)
            )
            overlay = OverlayNode(
                self.scheduler, node_id, self.mtmw, self.pki, config.overlay, stats
            )
            self.processes[node_id] = NodeProcess(
                node_id, self.scheduler, transport, overlay, stats
            )

        # Phase 2: now that every address is known, wire a PoR link pair
        # per MTMW edge, exactly as the simulator's builder does — only
        # the channels are UDP halves instead of simulated pipes.
        for a, b in self.topology.edges():
            proc_a, proc_b = self.processes[a], self.processes[b]
            proc_a.transport.register_peer(b, proc_b.address)
            proc_b.transport.register_peer(a, proc_a.address)
            end_a = PorEndpoint(
                self.scheduler,
                a,
                b,
                proc_a.transport.send_channel(b, coalesce=True),
                proc_a.transport.receive_channel(b),
                self.pki,
                config=config.overlay.por,
            )
            end_b = PorEndpoint(
                self.scheduler,
                b,
                a,
                proc_b.transport.send_channel(a, coalesce=True),
                proc_b.transport.receive_channel(a),
                self.pki,
                config=config.overlay.por,
            )
            end_a.establish_out_of_band()
            end_b.establish_out_of_band()
            end_a.attach_mac_counters(proc_a.stats.metrics)
            end_b.attach_mac_counters(proc_b.stats.metrics)
            proc_a.overlay.attach_link(b, end_a)
            proc_b.overlay.attach_link(a, end_b)

        for process in self.processes.values():
            process.overlay.start()

        # Safety + fault machinery.  Order matters: the monitor wraps
        # this deployment's crash/recover first, so every supervised kill
        # and restart passes through its state-loss bookkeeping.
        if config.monitor_invariants:
            self.monitor = InvariantMonitor(
                self, check_interval=config.invariant_check_interval
            )
            self.monitor.arm()
        self.supervisor = NodeSupervisor(self, config.supervision)
        self.supervisor.arm()
        if self.chaos_schedule is not None:
            assert self.injector is not None
            self.chaos_engine = LiveChaosEngine(
                self, self.chaos_schedule, self.injector, self.supervisor
            )
            self.chaos_engine.arm()
        if config.recovery is not None:
            # The feedback-controlled defense runs the proactive-recovery
            # rotation on the live substrate too: beliefs come from the
            # same per-node instruments the sim reads, plus live-only
            # transport drop and unexpected-restart counters.
            from repro.resilience.adaptive import (
                AdaptiveDefense,
                LiveRecoveryActuator,
            )

            self.defense = AdaptiveDefense(
                self,
                LiveRecoveryActuator(self),
                config=config.overlay.defense,
                adaptive=(config.recovery == "adaptive"),
                monitor=self.monitor,
                extra_signals=self._defense_signals,
            )
            self.defense.start()

        self._started_at = loop.time()
        self._start_traffic()

    def _defense_signals(self, node_id: NodeId) -> Dict[str, float]:
        """Live-only belief signals for one node: transport-level drops
        at its socket, and supervisor kills it did not initiate itself
        (crash faults, watchdog-detected socket deaths)."""
        process = self.processes[node_id]
        transport = process.transport
        signals: Dict[str, float] = {
            "transport.drop": float(
                transport.decode_errors
                + transport.misdirected
                + transport.unknown_sender
            ),
        }
        if self.supervisor is not None:
            record = self.supervisor.records.get(node_id)
            if record is not None:
                proactive = (
                    self.defense.proactive_downs(node_id)
                    if self.defense is not None
                    else 0
                )
                signals["supervisor.restart"] = float(
                    max(0, record.kills - proactive)
                )
        return signals

    def _resolve_chaos(self) -> Optional[FaultSchedule]:
        """The run's fault schedule: explicit, from a preset, or none."""
        config = self.config
        if config.chaos is not None:
            return config.chaos
        if config.chaos_preset is None:
            return None
        spec = CHAOS_PRESETS[config.chaos_preset](
            duration=config.inject_seconds, intensity=config.chaos_intensity
        )
        return spec.generate(self.topology, seed=config.seed)

    def _start_traffic(self) -> None:
        """One CBR flow per node; alternating priority/reliable semantics.
        A client-tier population workload rides on top when configured."""
        config = self.config
        if config.flow_traffic:
            rate_bps = config.rate_msgs_per_sec * config.size_bytes * 8.0
            for source, dest, semantics in flow_plan(sorted(self.topology.nodes)):
                generator = CbrTraffic(
                    self,  # duck-typed: CbrTraffic uses only .sim and .node()
                    source,
                    dest,
                    rate_bps=rate_bps,
                    size_bytes=config.size_bytes,
                    semantics=semantics,
                    method=config.method,
                    max_messages=config.messages_per_flow,
                )
                self.traffic.append(generator)
                self._flow_specs.append((source, dest, semantics))
                generator.start()
        if config.clients is not None:
            nodes = sorted(self.topology.nodes)
            ranked = list(nodes)
            # Seed-stable hot-destination ranking, same stream name the
            # sim-side overload sweep uses.
            self.sim.rngs.stream("overload:dest-rank").shuffle(ranked)
            self.client_tier = ClientTier(
                self, nodes, ranked, config=config.clients, method=config.method
            )
            self.client_tier.start()
        if config.sessions is not None:
            nodes = sorted(self.topology.nodes)
            ranked = list(nodes)
            # Seed-stable hot-destination ranking, same stream name the
            # sim-side SLO sweep uses.
            self.sim.rngs.stream("slo:dest-rank").shuffle(ranked)
            self.session_tier = SessionTier(
                self, nodes, ranked, workload=config.sessions
            )
            self.session_tier.start()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    async def serve(self) -> bool:
        """Inject for the configured window, then drain; returns True if
        the run was interrupted by SIGINT instead of running to time."""
        config = self.config
        stop_event = asyncio.Event()
        loop = asyncio.get_event_loop()
        sigint_armed = False
        try:
            loop.add_signal_handler(signal.SIGINT, stop_event.set)
            sigint_armed = True
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal support; timeout still applies
        try:
            self._interrupted = await self._wait(stop_event, config.inject_seconds)
            for generator in self.traffic:
                generator.stop()
            if self.client_tier is not None:
                self.client_tier.stop()
            if self.session_tier is not None:
                self.session_tier.stop()
            if not self._interrupted:
                drain = config.duration - config.inject_seconds
                self._interrupted = await self._wait(stop_event, drain)
        finally:
            if sigint_armed:
                loop.remove_signal_handler(signal.SIGINT)
        return self._interrupted

    @staticmethod
    async def _wait(stop_event: asyncio.Event, seconds: float) -> bool:
        """Wait ``seconds`` or until the event fires; True when it fired."""
        if seconds <= 0:
            return stop_event.is_set()
        try:
            await asyncio.wait_for(stop_event.wait(), timeout=seconds)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Graceful teardown: stop traffic and timers, close every socket.
        Idempotent, and safe to call after a partially failed start."""
        if self._stopped:
            return
        self._stopped = True
        for generator in self.traffic:
            generator.stop()
        if self.client_tier is not None:
            self.client_tier.stop()
        if self.session_tier is not None:
            self.session_tier.stop()
            self.session_tier.finalize()
        if self.defense is not None:
            self.defense.stop()
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.scheduler is not None:
            self.scheduler.shutdown()
        for process in self.processes.values():
            process.transport.close()
        # Give asyncio one cycle to run transport close callbacks (and
        # the cancelled watchdog task's unwinding).
        await asyncio.sleep(0)

    def _on_loop_exception(self, loop: Any, context: Dict[str, Any]) -> None:
        """An exception escaped into the event loop: attribute it to the
        owning node where possible, record it, and fail the run."""
        message = context.get("message") or "event-loop error"
        exception = context.get("exception")
        if exception is not None:
            message = f"{message}: {type(exception).__name__}: {exception}"
        node_id = None
        for key in ("protocol", "transport"):
            owner = getattr(context.get(key), "node_id", None)
            if owner is not None and owner in self.processes:
                node_id = owner
                break
        if node_id is not None:
            message = f"node {node_id!r}: {message}"
            self.processes[node_id].stats.counter("live.loop.exceptions").add()
        self._failed = True
        self._record_error(message)

    def _on_dispatch_error(self, node_id: NodeId, exc: BaseException) -> None:
        """A receive handler raised (caught in the transport so the
        node's receive path survives): charge the owning node and fail
        the run — delivery numbers from a node that throws on receive
        prove nothing."""
        self._failed = True
        process = self.processes.get(node_id)
        if process is not None:
            process.stats.counter("live.loop.exceptions").add()
        self._record_error(
            f"node {node_id!r}: receive dispatch failed: "
            f"{type(exc).__name__}: {exc}"
        )

    def _record_error(self, message: str) -> None:
        if len(self._runtime_errors) < MAX_RUNTIME_ERRORS:
            self._runtime_errors.append(message)
        else:
            self._errors_dropped += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> LiveReport:
        """Build the run report from per-node telemetry registries."""
        if self.scheduler is None or self._started_at is None:
            raise LiveRuntimeError("deployment never started")
        flows: List[FlowOutcome] = []
        for generator, (source, dest, semantics) in zip(
            self.traffic, self._flow_specs
        ):
            dest_stats = self.processes[dest].stats
            recorder = dest_stats.latency(f"latency:{source}->{dest}")
            flows.append(
                FlowOutcome(
                    source=source,
                    dest=dest,
                    semantics=semantics.value,
                    sent=generator.messages_sent,
                    delivered=recorder.count,
                    mean_latency=recorder.mean() if recorder.count else None,
                )
            )
        transport_totals = {
            "datagrams_received": 0,
            "bytes_received": 0,
            "decode_errors": 0,
            "misdirected": 0,
            "unknown_sender": 0,
            "encode_errors": 0,
            "dispatch_errors": 0,
            "send_errors": 0,
            "send_retries": 0,
            "send_drops": 0,
            "datagrams_drained": 0,
        }
        for process in self.processes.values():
            transport = process.transport
            transport_totals["datagrams_received"] += transport.datagrams_received
            transport_totals["bytes_received"] += transport.bytes_received
            transport_totals["decode_errors"] += transport.decode_errors
            transport_totals["misdirected"] += transport.misdirected
            transport_totals["unknown_sender"] += transport.unknown_sender
            transport_totals["encode_errors"] += transport.encode_errors
            transport_totals["dispatch_errors"] += transport.dispatch_errors
            transport_totals["send_errors"] += transport.send_errors
            transport_totals["send_retries"] += transport.send_retries
            transport_totals["send_drops"] += transport.send_drops
            transport_totals["datagrams_drained"] += transport.datagrams_drained
        runtime_errors = list(self._runtime_errors)
        if self._errors_dropped:
            runtime_errors.append(
                f"... {self._errors_dropped} further runtime error(s) dropped"
            )
        chaos_summary = None
        if self.chaos_engine is not None:
            chaos_summary = self.chaos_engine.summary()
            chaos_summary["injector"] = self.injector.summary()
            chaos_summary["schedule_counts"] = self.chaos_schedule.counts()
        admission_summary: Optional[Dict[str, Any]] = None
        per_node_admission = {
            str(node_id): process.overlay.admission.snapshot()
            for node_id, process in sorted(
                self.processes.items(), key=lambda item: str(item[0])
            )
            if process.overlay.admission is not None
        }
        if per_node_admission or self.client_tier is not None:
            admission_summary = {"per_node": per_node_admission}
            totals: Dict[str, int] = {}
            for snapshot in per_node_admission.values():
                for key, value in snapshot.items():
                    if isinstance(value, int):
                        totals[key] = totals.get(key, 0) + value
            admission_summary["totals"] = totals
            if self.client_tier is not None:
                admission_summary["clients"] = self.client_tier.snapshot()
        return LiveReport(
            nodes=self.config.nodes,
            duration=self.config.duration,
            seed=self.config.seed,
            method=self.config.method.kind
            if self.config.method.is_flooding
            else f"kpaths:{self.config.method.k}",
            interrupted=self._interrupted,
            wall_seconds=self.scheduler.now,
            flows=flows,
            per_node={
                str(node_id): process.snapshot()
                for node_id, process in sorted(
                    self.processes.items(), key=lambda item: str(item[0])
                )
            },
            transport=transport_totals,
            runtime_errors=runtime_errors,
            chaos=chaos_summary,
            supervision=(
                self.supervisor.summary() if self.supervisor is not None else None
            ),
            invariants=(
                self.monitor.summary() if self.monitor is not None else None
            ),
            adaptive=(
                self.defense.summary() if self.defense is not None else None
            ),
            admission=admission_summary,
            sessions=(
                self.session_tier.snapshot()
                if self.session_tier is not None
                else None
            ),
            failed=self._failed,
        )


async def _run_async(config: LiveConfig) -> LiveReport:
    deployment = LiveDeployment(config)
    await deployment.start()
    try:
        await deployment.serve()
    finally:
        await deployment.stop()
    return deployment.report()


def run_live(config: Optional[LiveConfig] = None) -> LiveReport:
    """Boot a live overlay, run it to completion (or SIGINT), and report."""
    return asyncio.run(_run_async(config or LiveConfig()))
