"""Real UDP transports for the live overlay runtime.

One :class:`AsyncioUdpTransport` per overlay node: a single UDP socket
bound to localhost, shared by all of the node's Proof-of-Receipt links.
Per directed link the node holds

* a :class:`UdpSendChannel` (the ``out_channel`` of its PoR endpoint) —
  encodes each packet with :mod:`repro.runtime.wire` and sends one real
  datagram to the neighbor's socket;
* a :class:`UdpReceiveChannel` (the ``in_channel``) — a registration
  point for the endpoint's ``on_receive``; the transport decodes
  incoming datagrams and dispatches them here by sender id.

Both channel classes satisfy the
:class:`repro.runtime.interfaces.TransportLike` protocol, which is the
same duck type :class:`repro.sim.channel.Channel` implements — so
:class:`repro.link.por.PorEndpoint` runs unmodified over either.

Robustness: anything that is not a well-formed, correctly addressed
datagram from a known neighbor is counted and dropped — an attacker (or
a stray process) spraying a node's port cannot crash it, only waste its
decode budget.  That mirrors the paper's stance that overlay nodes only
accept traffic from their direct MTMW neighbors.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import LiveRuntimeError, WireDecodeError, WireEncodeError
from repro.runtime.wire import decode_datagram, encode_datagram

Address = Tuple[str, int]


class UdpReceiveChannel:
    """The receiving half of one directed link (peer -> local node)."""

    __slots__ = ("peer", "on_receive", "packets_delivered")

    def __init__(self, peer: Any):
        self.peer = peer
        self.on_receive: Optional[Callable[[Any], None]] = None
        self.packets_delivered = 0

    def deliver(self, packet: Any) -> None:
        """Hand one decoded packet to the registered receiver."""
        self.packets_delivered += 1
        if self.on_receive is not None:
            self.on_receive(packet)

    def send(self, packet: Any, size_bytes: int) -> None:
        """TransportLike parity only: a receive channel never sends."""
        raise LiveRuntimeError("UdpReceiveChannel cannot send")

    def time_until_idle(self) -> float:
        """Always 0.0: receiving never backlogs the channel."""
        return 0.0


class UdpSendChannel:
    """The sending half of one directed link (local node -> peer)."""

    __slots__ = (
        "_transport",
        "peer",
        "on_receive",
        "packets_sent",
        "bytes_sent",
        "encode_errors",
    )

    def __init__(self, transport: "AsyncioUdpTransport", peer: Any):
        self._transport = transport
        self.peer = peer
        self.on_receive: Optional[Callable[[Any], None]] = None  # unused; parity
        self.packets_sent = 0
        self.bytes_sent = 0
        self.encode_errors = 0

    def send(self, packet: Any, size_bytes: int) -> None:
        """Encode ``packet`` and transmit one datagram to the peer.

        ``size_bytes`` is the *modeled* wire size used by the protocol's
        accounting; the actual datagram carries the codec's compact
        encoding.  A payload the codec cannot represent is counted and
        dropped (the PoR link treats it as loss), so one unsupported
        control object cannot crash the node's send path.
        """
        try:
            data = encode_datagram(self._transport.node_id, self.peer, packet)
        except WireEncodeError:
            self.encode_errors += 1
            self._transport.note_encode_error()
            return
        self.packets_sent += 1
        self.bytes_sent += len(data)
        self._transport.sendto(self.peer, data)

    def time_until_idle(self) -> float:
        """The kernel buffers sends; the channel is always ready."""
        return 0.0


class AsyncioUdpTransport(asyncio.DatagramProtocol):
    """One overlay node's UDP socket plus per-neighbor dispatch."""

    #: Wait before retrying a send that failed with a transient OSError
    #: (e.g. ENOBUFS under load); one retry, then the PoR link's own
    #: retransmission takes over.
    SEND_RETRY_DELAY = 0.01

    def __init__(self, node_id: Any, metrics: Any = None):
        self.node_id = node_id
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._host = "127.0.0.1"
        self._peers: Dict[Any, Address] = {}
        self._inbound: Dict[Any, UdpReceiveChannel] = {}
        # Drop accounting (spray-resistance observability).
        self.datagrams_received = 0
        self.bytes_received = 0
        self.decode_errors = 0
        self.misdirected = 0
        self.unknown_sender = 0
        self.encode_errors = 0
        self.dispatch_errors = 0
        self.send_errors = 0
        self.send_retries = 0
        #: When set, an exception escaping a receiver's ``on_receive`` is
        #: swallowed (counted as ``dispatch_errors``) and reported here
        #: instead of unwinding into the event loop — the deployment uses
        #: this to attribute the failure to the owning node.  Unset, the
        #: exception propagates (standalone-transport behavior).
        self.on_dispatch_error: Optional[Callable[[BaseException], None]] = None
        self._counters = None
        if metrics is not None:
            self._counters = {
                "rx": metrics.counter("live.rx.datagrams"),
                "rx_bytes": metrics.counter("live.rx.bytes"),
                "tx": metrics.counter("live.tx.datagrams"),
                "tx_bytes": metrics.counter("live.tx.bytes"),
                "drops": metrics.counter("live.rx.drops"),
                # Per-reason drop breakdown (mirrors the attribute
                # counters, so per-node snapshots expose them).
                "drop_decode": metrics.counter("live.rx.drop.decode"),
                "drop_misdirected": metrics.counter("live.rx.drop.misdirected"),
                "drop_unknown": metrics.counter("live.rx.drop.unknown_sender"),
                "dispatch_errors": metrics.counter("live.rx.dispatch_errors"),
                "send_errors": metrics.counter("live.tx.send_errors"),
                "send_retries": metrics.counter("live.tx.send_retries"),
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        node_id: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Any = None,
        **kwargs: Any,
    ) -> "AsyncioUdpTransport":
        """Bind a UDP socket for ``node_id`` (port 0 = ephemeral) and
        return the ready transport.  Extra keyword arguments go to the
        subclass constructor (e.g. the chaos transport's injector)."""
        protocol = cls(node_id, metrics=metrics, **kwargs)
        await protocol._bind(host, port)
        return protocol

    async def _bind(self, host: str, port: int) -> None:
        self._host = host
        self._loop = asyncio.get_event_loop()
        await self._loop.create_datagram_endpoint(
            lambda: self, local_addr=(host, port)
        )

    async def reopen(self, host: Optional[str] = None, port: int = 0) -> Address:
        """Bind a fresh socket after :meth:`close` — the supervisor's
        restart path.  Peer registrations, receive channels, and counters
        all survive; only the OS-level endpoint (and thus, with an
        ephemeral port, the local address) is new.  Returns the new
        address so peers can be re-pointed at it."""
        if self._transport is not None:
            raise LiveRuntimeError(
                f"transport for {self.node_id!r} is still open"
            )
        await self._bind(host or self._host, port)
        return self.local_address

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]

    @property
    def local_address(self) -> Address:
        """The (host, port) this node's socket is bound to."""
        if self._transport is None:
            raise LiveRuntimeError(f"transport for {self.node_id!r} is not bound")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def closed(self) -> bool:
        """True when no socket is bound (pre-open, or post-close)."""
        return self._transport is None

    def close(self) -> None:
        """Close the socket; safe to call more than once."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_peer(self, peer_id: Any, address: Address) -> UdpReceiveChannel:
        """Declare a neighbor: where to send, and accept traffic from it."""
        self._peers[peer_id] = address
        channel = UdpReceiveChannel(peer_id)
        self._inbound[peer_id] = channel
        return channel

    def update_peer_address(self, peer_id: Any, address: Address) -> None:
        """Re-point an existing registration at a new address (the peer
        restarted on a fresh ephemeral port).  Unlike
        :meth:`register_peer` this keeps the receive channel — and the
        PoR endpoint's ``on_receive`` hook bound to it — intact."""
        if peer_id not in self._peers:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        self._peers[peer_id] = address

    def send_channel(self, peer_id: Any) -> UdpSendChannel:
        """The sending half of the directed link to ``peer_id``."""
        if peer_id not in self._peers:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        return UdpSendChannel(self, peer_id)

    def receive_channel(self, peer_id: Any) -> UdpReceiveChannel:
        """The receiving half of the directed link from ``peer_id``."""
        try:
            return self._inbound[peer_id]
        except KeyError:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Datagram I/O
    # ------------------------------------------------------------------
    def sendto(self, peer_id: Any, data: bytes, _retry: bool = False) -> None:
        """Send raw encoded bytes to a registered peer.

        A transient :class:`OSError` (e.g. ``ENOBUFS`` when the kernel's
        socket buffers are saturated) is counted and retried once after a
        short delay; a second failure is dropped — the PoR link treats it
        as loss and retransmits.
        """
        if self._transport is None:
            return  # shutting down; drop silently
        address = self._peers.get(peer_id)
        if address is None:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        try:
            self._transport.sendto(data, address)
        except OSError:
            self.send_errors += 1
            if self._counters is not None:
                self._counters["send_errors"].add()
            if not _retry and self._loop is not None:
                self._loop.call_later(
                    self.SEND_RETRY_DELAY, self._retry_sendto, peer_id, data
                )
            return
        if self._counters is not None:
            self._counters["tx"].add()
            self._counters["tx_bytes"].add(len(data))

    def _retry_sendto(self, peer_id: Any, data: bytes) -> None:
        if self._transport is None or peer_id not in self._peers:
            return  # closed (or peer torn down) while the retry was queued
        self.send_retries += 1
        if self._counters is not None:
            self._counters["send_retries"].add()
        self.sendto(peer_id, data, _retry=True)

    def note_encode_error(self) -> None:
        """Record a dropped-at-encode packet (see UdpSendChannel.send)."""
        self.encode_errors += 1

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.datagrams_received += 1
        self.bytes_received += len(data)
        if self._counters is not None:
            self._counters["rx"].add()
            self._counters["rx_bytes"].add(len(data))
        try:
            datagram = decode_datagram(data)
        except WireDecodeError:
            self.decode_errors += 1
            self._note_drop("drop_decode")
            return
        if datagram.receiver != self.node_id:
            self.misdirected += 1
            self._note_drop("drop_misdirected")
            return
        channel = self._inbound.get(datagram.sender)
        if channel is None:
            self.unknown_sender += 1
            self._note_drop("drop_unknown")
            return
        try:
            channel.deliver(datagram.packet)
        except Exception as exc:
            self.dispatch_errors += 1
            if self._counters is not None:
                self._counters["dispatch_errors"].add()
            if self.on_dispatch_error is None:
                raise
            # One poisoned handler (or payload) must not take the node's
            # receive path down with it; the deployment decides whether
            # the run still counts as healthy.
            self.on_dispatch_error(exc)

    def _note_drop(self, reason: str) -> None:
        if self._counters is not None:
            self._counters["drops"].add()
            self._counters[reason].add()

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP port-unreachable while a peer restarts: UDP is lossy and
        # the PoR link retransmits, so this is noise, not failure.
        pass
