"""Real UDP transports for the live overlay runtime.

One :class:`AsyncioUdpTransport` per overlay node: a single UDP socket
bound to localhost, shared by all of the node's Proof-of-Receipt links.
Per directed link the node holds

* a :class:`UdpSendChannel` (the ``out_channel`` of its PoR endpoint) —
  encodes each packet with :mod:`repro.runtime.wire` and sends one real
  datagram to the neighbor's socket;
* a :class:`UdpReceiveChannel` (the ``in_channel``) — a registration
  point for the endpoint's ``on_receive``; the transport decodes
  incoming datagrams and dispatches them here by sender id.

Both channel classes satisfy the
:class:`repro.runtime.interfaces.TransportLike` protocol, which is the
same duck type :class:`repro.sim.channel.Channel` implements — so
:class:`repro.link.por.PorEndpoint` runs unmodified over either.

Batched wire path
-----------------

Three layers of batching amortize per-datagram overhead:

* :meth:`UdpSendChannel.send_batch` packs several link packets into one
  batch-container datagram (``FLAG_BATCH`` in :mod:`repro.runtime.wire`)
  — one header, one CRC, one syscall for N frames.  With *coalescing*
  enabled, plain :meth:`UdpSendChannel.send` calls inside one event-loop
  tick are gathered and flushed as a batch at the end of the tick, so
  PoR ACKs generated while data is queued piggyback in the same
  datagram.  A single pending packet flushes through the classic
  (flags=0) layout, keeping unbatched traffic byte-identical to the
  simulator's conformance expectations.
* :meth:`AsyncioUdpTransport.sendto_batch` hands a burst of encoded
  datagrams to the kernel in one ``sendmmsg`` call where the platform's
  ``socket`` module exposes it, falling back to per-datagram ``sendto``
  (CPython's stdlib currently has no ``sendmmsg``, so the fallback is
  the common path — the seam is what matters).
* The receive path drains multiple queued datagrams per event-loop
  wakeup: after asyncio hands over one datagram, the transport pulls
  whatever else the socket already has (``recvmmsg`` where available,
  bounded non-blocking ``recvfrom`` otherwise) instead of paying one
  loop iteration per datagram.

Robustness: anything that is not a well-formed, correctly addressed
datagram from a known neighbor is counted and dropped — an attacker (or
a stray process) spraying a node's port cannot crash it, only waste its
decode budget.  That mirrors the paper's stance that overlay nodes only
accept traffic from their direct MTMW neighbors.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import LiveRuntimeError, WireDecodeError, WireEncodeError
from repro.runtime.wire import (
    AddrAnnounce,
    AddrQuery,
    AddrReply,
    decode_datagram,
    encode_batch_datagram,
    encode_datagram,
)

Address = Tuple[str, int]

#: Bootstrap-discovery control frames dispatched via ``on_control``
#: (they arrive from senders that are not yet registered peers).
_CONTROL_FRAMES = (AddrQuery, AddrReply, AddrAnnounce)


class UdpReceiveChannel:
    """The receiving half of one directed link (peer -> local node)."""

    __slots__ = ("peer", "on_receive", "packets_delivered")

    def __init__(self, peer: Any):
        self.peer = peer
        self.on_receive: Optional[Callable[[Any], None]] = None
        self.packets_delivered = 0

    def deliver(self, packet: Any) -> None:
        """Hand one decoded packet to the registered receiver."""
        self.packets_delivered += 1
        if self.on_receive is not None:
            self.on_receive(packet)

    def send(self, packet: Any, size_bytes: int) -> None:
        """TransportLike parity only: a receive channel never sends."""
        raise LiveRuntimeError("UdpReceiveChannel cannot send")

    def send_batch(self, packets: Sequence[Tuple[Any, int]]) -> None:
        """TransportLike parity only: a receive channel never sends."""
        raise LiveRuntimeError("UdpReceiveChannel cannot send")

    def time_until_idle(self) -> float:
        """Always 0.0: receiving never backlogs the channel."""
        return 0.0


class UdpSendChannel:
    """The sending half of one directed link (local node -> peer).

    ``time_until_idle`` mirrors the sim :class:`~repro.sim.channel.
    Channel` semantics exactly: when a serialization model is configured
    (``bandwidth_bps`` plus a clock), sends advance a ``busy_until``
    watermark by ``size_bytes * 8 / bandwidth`` and the channel reports
    ``max(0.0, busy_until - now)``; without a model (bandwidth ``None``,
    the sim's "infinite" setting) it reports 0.0 — the same answer the
    sim gives, so the overlay pump's skip-on-backlog fast path behaves
    identically on both substrates.
    """

    __slots__ = (
        "_transport",
        "peer",
        "on_receive",
        "packets_sent",
        "bytes_sent",
        "encode_errors",
        "send_retries",
        "send_drops",
        "datagrams_sent",
        "_clock",
        "_bandwidth_bps",
        "_busy_until",
        "_coalesce",
        "_pending",
        "_flush_scheduled",
    )

    def __init__(
        self,
        transport: "AsyncioUdpTransport",
        peer: Any,
        clock: Any = None,
        bandwidth_bps: Optional[float] = None,
        coalesce: bool = False,
    ):
        self._transport = transport
        self.peer = peer
        self.on_receive: Optional[Callable[[Any], None]] = None  # unused; parity
        self.packets_sent = 0
        self.bytes_sent = 0
        self.encode_errors = 0
        #: Per-link transmissions re-attempted by the transport's retry
        #: path, and sends definitively dropped after the retry also
        #: failed — the accounting the PoR link's loss model sees.
        self.send_retries = 0
        self.send_drops = 0
        #: Real datagrams put on the socket (< packets_sent when batching).
        self.datagrams_sent = 0
        self._clock = clock
        self._bandwidth_bps = bandwidth_bps
        self._busy_until = 0.0
        self._coalesce = coalesce
        self._pending: List[Any] = []
        self._flush_scheduled = False

    def _advance_busy(self, size_bytes: int) -> None:
        if self._bandwidth_bps is None or self._clock is None:
            return
        now = self._clock.now
        start = now if now > self._busy_until else self._busy_until
        self._busy_until = start + (size_bytes * 8.0) / self._bandwidth_bps

    def send(self, packet: Any, size_bytes: int) -> None:
        """Encode ``packet`` and transmit one datagram to the peer.

        ``size_bytes`` is the *modeled* wire size used by the protocol's
        accounting; the actual datagram carries the codec's compact
        encoding.  A payload the codec cannot represent is counted and
        dropped (the PoR link treats it as loss), so one unsupported
        control object cannot crash the node's send path.

        With coalescing enabled the packet is queued and flushed — as a
        batch container when others joined it this tick — via
        ``call_soon``, so ACKs piggyback with data generated in the same
        wakeup.
        """
        self._advance_busy(size_bytes)
        if self._coalesce:
            self._pending.append(packet)
            if not self._flush_scheduled:
                loop = self._transport._loop
                if loop is not None:
                    self._flush_scheduled = True
                    loop.call_soon(self._flush)
                    return
                # No loop yet: fall through and send inline.
                self._pending.pop()
            else:
                return
        self._send_one(packet)

    def _send_one(self, packet: Any) -> None:
        try:
            data = encode_datagram(self._transport.node_id, self.peer, packet)
        except WireEncodeError:
            self.encode_errors += 1
            self._transport.note_encode_error()
            return
        self.packets_sent += 1
        self.bytes_sent += len(data)
        self.datagrams_sent += 1
        self._transport.sendto(self.peer, data, channel=self)

    def send_batch(self, packets: Sequence[Tuple[Any, int]]) -> None:
        """Transmit several packets, batched into container datagrams.

        ``packets`` is a sequence of ``(packet, size_bytes)`` pairs (the
        same shape as N :meth:`send` calls).  All frames that fit go out
        in one batch-container datagram; an over-large or unencodable
        batch degrades to per-packet classic datagrams so one bad packet
        only drops itself.
        """
        for _, size_bytes in packets:
            self._advance_busy(size_bytes)
        self._transmit_batch([packet for packet, _ in packets])

    def _flush(self) -> None:
        self._flush_scheduled = False
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self._transmit_batch(pending)

    def _transmit_batch(self, packets: List[Any]) -> None:
        if not packets:
            return
        if len(packets) == 1:
            self._send_one(packets[0])
            return
        try:
            data = encode_batch_datagram(
                self._transport.node_id, self.peer, packets
            )
        except WireEncodeError:
            # Oversized container or one unencodable packet: fall back
            # to classic per-packet datagrams (each individually guarded).
            for packet in packets:
                self._send_one(packet)
            return
        self.packets_sent += len(packets)
        self.bytes_sent += len(data)
        self.datagrams_sent += 1
        self._transport.sendto(self.peer, data, channel=self)

    def time_until_idle(self) -> float:
        """Seconds until the serializer is free (0.0 if idle now)."""
        if self._clock is None:
            return 0.0
        remaining = self._busy_until - self._clock.now
        return remaining if remaining > 0.0 else 0.0


class AsyncioUdpTransport(asyncio.DatagramProtocol):
    """One overlay node's UDP socket plus per-neighbor dispatch."""

    #: Wait before retrying a send that failed with a transient OSError
    #: (e.g. ENOBUFS under load); one retry, then the PoR link's own
    #: retransmission takes over.
    SEND_RETRY_DELAY = 0.01

    #: Upper bound on extra datagrams drained from the socket per
    #: event-loop wakeup (beyond the one asyncio delivered), so one
    #: flooding peer cannot starve the loop.
    DRAIN_BATCH = 32

    def __init__(self, node_id: Any, metrics: Any = None):
        self.node_id = node_id
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._host = "127.0.0.1"
        self._peers: Dict[Any, Address] = {}
        self._inbound: Dict[Any, UdpReceiveChannel] = {}
        self._socket: Any = None
        # Chaos (and other) subclasses interpose on per-datagram sendto;
        # the kernel-batching fast path must not route around them.
        self._sendto_plain = type(self).sendto is AsyncioUdpTransport.sendto
        # Drop accounting (spray-resistance observability).
        self.datagrams_received = 0
        self.bytes_received = 0
        self.decode_errors = 0
        self.misdirected = 0
        self.unknown_sender = 0
        self.encode_errors = 0
        self.dispatch_errors = 0
        self.send_errors = 0
        self.send_retries = 0
        #: Sends abandoned after the retry also failed (or no retry was
        #: possible): definitive transport-level loss, distinct from
        #: ``send_errors`` which counts every failed attempt.
        self.send_drops = 0
        #: Extra datagrams pulled by the per-wakeup drain loop (they are
        #: also counted in ``datagrams_received``).
        self.datagrams_drained = 0
        #: When set, an exception escaping a receiver's ``on_receive`` is
        #: swallowed (counted as ``dispatch_errors``) and reported here
        #: instead of unwinding into the event loop — the deployment uses
        #: this to attribute the failure to the owning node.  Unset, the
        #: exception propagates (standalone-transport behavior).
        self.on_dispatch_error: Optional[Callable[[BaseException], None]] = None
        #: Cluster bootstrap-discovery hook: when set, a well-formed
        #: control frame (AddrQuery/AddrReply/AddrAnnounce) is handed
        #: here *before* the unknown-sender drop — a joining node is by
        #: definition not yet a registered peer.  Receives
        #: ``(packet, addr)``; exceptions are swallowed into the
        #: dispatch-error accounting.
        self.on_control: Optional[Callable[[Any, Address], None]] = None
        #: The port the socket was last bound to (survives ``close`` so a
        #: supervised restart can try to reclaim the same port, keeping
        #: peers' registrations valid without a re-announce).
        self.last_local_port: Optional[int] = None
        self._counters = None
        if metrics is not None:
            self._counters = {
                "rx": metrics.counter("live.rx.datagrams"),
                "rx_bytes": metrics.counter("live.rx.bytes"),
                "tx": metrics.counter("live.tx.datagrams"),
                "tx_bytes": metrics.counter("live.tx.bytes"),
                "drops": metrics.counter("live.rx.drops"),
                # Per-reason drop breakdown (mirrors the attribute
                # counters, so per-node snapshots expose them).
                "drop_decode": metrics.counter("live.rx.drop.decode"),
                "drop_misdirected": metrics.counter("live.rx.drop.misdirected"),
                "drop_unknown": metrics.counter("live.rx.drop.unknown_sender"),
                "dispatch_errors": metrics.counter("live.rx.dispatch_errors"),
                "send_errors": metrics.counter("live.tx.send_errors"),
                "send_retries": metrics.counter("live.tx.send_retries"),
                "send_drops": metrics.counter("live.tx.send_drops"),
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def open(
        cls,
        node_id: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Any = None,
        **kwargs: Any,
    ) -> "AsyncioUdpTransport":
        """Bind a UDP socket for ``node_id`` (port 0 = ephemeral) and
        return the ready transport.  Extra keyword arguments go to the
        subclass constructor (e.g. the chaos transport's injector)."""
        protocol = cls(node_id, metrics=metrics, **kwargs)
        await protocol._bind(host, port)
        return protocol

    async def _bind(self, host: str, port: int) -> None:
        self._host = host
        self._loop = asyncio.get_event_loop()
        await self._loop.create_datagram_endpoint(
            lambda: self, local_addr=(host, port)
        )

    async def reopen(self, host: Optional[str] = None, port: int = 0) -> Address:
        """Bind a fresh socket after :meth:`close` — the supervisor's
        restart path.  Peer registrations, receive channels, and counters
        all survive; only the OS-level endpoint (and thus, with an
        ephemeral port, the local address) is new.  Returns the new
        address so peers can be re-pointed at it."""
        if self._transport is not None:
            raise LiveRuntimeError(
                f"transport for {self.node_id!r} is still open"
            )
        await self._bind(host or self._host, port)
        return self.local_address

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]
        # asyncio wraps the socket in a TransportSocket facade that hides
        # recvfrom/sendmmsg; unwrap to the real socket for the batched
        # I/O fast paths (read-only use: asyncio still owns lifecycle).
        sock = transport.get_extra_info("socket")
        self._socket = getattr(sock, "_sock", sock)
        sockname = transport.get_extra_info("sockname")
        if sockname:
            self.last_local_port = sockname[1]

    @property
    def local_address(self) -> Address:
        """The (host, port) this node's socket is bound to."""
        if self._transport is None:
            raise LiveRuntimeError(f"transport for {self.node_id!r} is not bound")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def closed(self) -> bool:
        """True when no socket is bound (pre-open, or post-close)."""
        return self._transport is None

    def close(self) -> None:
        """Close the socket; safe to call more than once."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
            self._socket = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_peer(self, peer_id: Any, address: Address) -> UdpReceiveChannel:
        """Declare a neighbor: where to send, and accept traffic from it."""
        self._peers[peer_id] = address
        channel = UdpReceiveChannel(peer_id)
        self._inbound[peer_id] = channel
        return channel

    def update_peer_address(self, peer_id: Any, address: Address) -> None:
        """Re-point an existing registration at a new address (the peer
        restarted on a fresh ephemeral port).  Unlike
        :meth:`register_peer` this keeps the receive channel — and the
        PoR endpoint's ``on_receive`` hook bound to it — intact."""
        if peer_id not in self._peers:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        self._peers[peer_id] = address

    def send_channel(
        self,
        peer_id: Any,
        clock: Any = None,
        bandwidth_bps: Optional[float] = None,
        coalesce: bool = False,
    ) -> UdpSendChannel:
        """The sending half of the directed link to ``peer_id``.

        ``clock`` + ``bandwidth_bps`` arm the sim-identical serialization
        model behind :meth:`UdpSendChannel.time_until_idle`; ``coalesce``
        turns on same-tick batch flushing.
        """
        if peer_id not in self._peers:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        return UdpSendChannel(
            self, peer_id, clock=clock, bandwidth_bps=bandwidth_bps,
            coalesce=coalesce,
        )

    def receive_channel(self, peer_id: Any) -> UdpReceiveChannel:
        """The receiving half of the directed link from ``peer_id``."""
        try:
            return self._inbound[peer_id]
        except KeyError:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Datagram I/O
    # ------------------------------------------------------------------
    def sendto(
        self,
        peer_id: Any,
        data: bytes,
        _retry: bool = False,
        channel: Optional[UdpSendChannel] = None,
    ) -> None:
        """Send raw encoded bytes to a registered peer.

        A transient :class:`OSError` (e.g. ``ENOBUFS`` when the kernel's
        socket buffers are saturated) is counted and retried once after a
        short delay; a second failure is *dropped and accounted* — the
        transport's ``send_drops`` (and the originating channel's, when
        known) record the definitive loss, and the PoR link retransmits.
        """
        if self._transport is None:
            return  # shutting down; drop silently
        address = self._peers.get(peer_id)
        if address is None:
            raise LiveRuntimeError(
                f"{self.node_id!r} has no registered peer {peer_id!r}"
            )
        try:
            self._transport.sendto(data, address)
        except OSError:
            self.send_errors += 1
            if self._counters is not None:
                self._counters["send_errors"].add()
            if not _retry and self._loop is not None:
                self._loop.call_later(
                    self.SEND_RETRY_DELAY, self._retry_sendto, peer_id, data,
                    channel,
                )
            else:
                # The retry also failed (or no retry was possible): this
                # datagram is definitively lost at the transport.
                self._note_send_drop(channel)
            return
        if self._counters is not None:
            self._counters["tx"].add()
            self._counters["tx_bytes"].add(len(data))

    def _retry_sendto(
        self,
        peer_id: Any,
        data: bytes,
        channel: Optional[UdpSendChannel] = None,
    ) -> None:
        if self._transport is None or peer_id not in self._peers:
            return  # closed (or peer torn down) while the retry was queued
        self.send_retries += 1
        if self._counters is not None:
            self._counters["send_retries"].add()
        if channel is not None:
            # Per-link accounting: the retried transmission belongs to
            # the link that originated the datagram.
            channel.send_retries += 1
        self.sendto(peer_id, data, _retry=True, channel=channel)

    def _note_send_drop(self, channel: Optional[UdpSendChannel]) -> None:
        self.send_drops += 1
        if self._counters is not None:
            self._counters["send_drops"].add()
        if channel is not None:
            channel.send_drops += 1

    def sendto_batch(
        self,
        peer_id: Any,
        datagrams: Sequence[bytes],
        channel: Optional[UdpSendChannel] = None,
    ) -> None:
        """Send several encoded datagrams to one peer in one syscall.

        Uses ``socket.sendmmsg`` when the platform exposes it *and* no
        subclass interposes on :meth:`sendto` (the chaos transport must
        see every datagram); otherwise falls back to per-datagram
        :meth:`sendto`, which keeps the retry/drop accounting.
        """
        if not datagrams:
            return
        if self._sendto_plain and self._transport is not None:
            sock = self._socket
            sendmmsg = getattr(sock, "sendmmsg", None) if sock is not None else None
            if sendmmsg is not None:
                address = self._peers.get(peer_id)
                if address is None:
                    raise LiveRuntimeError(
                        f"{self.node_id!r} has no registered peer {peer_id!r}"
                    )
                try:
                    # Linux sendmmsg semantics: a list of sendmsg argument
                    # tuples; returns how many messages were accepted.
                    sent = sendmmsg(
                        [([data], (), 0, address) for data in datagrams]
                    )
                except (OSError, TypeError):
                    sent = 0  # kernel refused the batch; retry one by one
                if self._counters is not None and sent:
                    self._counters["tx"].add(sent)
                    self._counters["tx_bytes"].add(
                        sum(len(data) for data in datagrams[:sent])
                    )
                datagrams = datagrams[sent:]
        for data in datagrams:
            self.sendto(peer_id, data, channel=channel)

    def sendto_address(self, data: bytes, address: Address) -> None:
        """Send raw encoded bytes to an explicit address (no peer
        registration required) — the discovery path, where a joining
        node only knows a seed node's address, not a registered link.
        Best-effort: a failed send is counted, never retried (discovery
        frames are re-issued by their own timers)."""
        if self._transport is None:
            return
        try:
            self._transport.sendto(data, address)
        except OSError:
            self.send_errors += 1
            if self._counters is not None:
                self._counters["send_errors"].add()
            return
        if self._counters is not None:
            self._counters["tx"].add()
            self._counters["tx_bytes"].add(len(data))

    def note_encode_error(self) -> None:
        """Record a dropped-at-encode packet (see UdpSendChannel.send)."""
        self.encode_errors += 1

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._process_datagram(data, addr)
        self._drain_pending()

    def _process_datagram(self, data: bytes, addr: Address) -> None:
        self.datagrams_received += 1
        self.bytes_received += len(data)
        if self._counters is not None:
            self._counters["rx"].add()
            self._counters["rx_bytes"].add(len(data))
        try:
            datagram = decode_datagram(data)
        except WireDecodeError:
            self.decode_errors += 1
            self._note_drop("drop_decode")
            return
        if datagram.receiver != self.node_id:
            self.misdirected += 1
            self._note_drop("drop_misdirected")
            return
        if isinstance(datagram.packet, _CONTROL_FRAMES):
            # Discovery control frames bypass peer dispatch: they may
            # legitimately come from nodes that are not registered peers
            # yet (a joiner querying a seed node).  Without a handler
            # they fall through to the normal unknown-sender drop.
            if self.on_control is not None:
                try:
                    self.on_control(datagram.packet, addr)
                except Exception as exc:
                    self.dispatch_errors += 1
                    if self._counters is not None:
                        self._counters["dispatch_errors"].add()
                    if self.on_dispatch_error is None:
                        raise
                    self.on_dispatch_error(exc)
                return
        channel = self._inbound.get(datagram.sender)
        if channel is None:
            self.unknown_sender += 1
            self._note_drop("drop_unknown")
            return
        for packet in datagram.packets:
            try:
                channel.deliver(packet)
            except Exception as exc:
                self.dispatch_errors += 1
                if self._counters is not None:
                    self._counters["dispatch_errors"].add()
                if self.on_dispatch_error is None:
                    raise
                # One poisoned handler (or payload) must not take the
                # node's receive path down with it; the deployment decides
                # whether the run still counts as healthy.
                self.on_dispatch_error(exc)

    def _drain_pending(self) -> None:
        """Drain datagrams the socket already queued, in this wakeup.

        asyncio's datagram transport hands over one datagram per loop
        iteration; under burst load that is one full loop cycle of
        overhead per datagram.  Pulling the rest of the queue here
        (``recvmmsg`` where available, non-blocking ``recvfrom``
        otherwise) amortizes the wakeup across the burst.  Bounded by
        :data:`DRAIN_BATCH` so a flooding peer cannot starve the loop.
        """
        sock = self._socket
        if sock is None or self._transport is None:
            return
        recvmmsg = getattr(sock, "recvmmsg", None)
        if recvmmsg is not None:
            try:
                # Linux recvmmsg semantics: returns a list of recvmsg
                # result tuples (data, ancdata, flags, address).
                for data, _anc, _flags, addr in recvmmsg(
                    self.DRAIN_BATCH, 65535
                ):
                    self.datagrams_drained += 1
                    self._process_datagram(data, addr)
                return
            except (BlockingIOError, InterruptedError):
                return
            except (OSError, TypeError):
                pass  # fall back to recvfrom below
        try:
            recv_from = sock.recvfrom
        except AttributeError:  # pragma: no cover - exotic socket wrapper
            return
        for _ in range(self.DRAIN_BATCH):
            if self._transport is None:
                return  # a handler closed us mid-drain
            try:
                data, addr = recv_from(65535)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket died mid-drain; error_received handles it
            self.datagrams_drained += 1
            self._process_datagram(data, addr)

    def _note_drop(self, reason: str) -> None:
        if self._counters is not None:
            self._counters["drops"].add()
            self._counters[reason].add()

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        # ICMP port-unreachable while a peer restarts: UDP is lossy and
        # the PoR link retransmits, so this is noise, not failure.
        pass
