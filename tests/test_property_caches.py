"""Hypothesis property tests for the hot-path caches.

The performance overhaul added two derived-value caches that must be
*observationally invisible*:

* the per-node :class:`~repro.routing.link_state.RouteCache` — keyed by
  the routing view's ``version``, which advances on every accepted
  (sequence-number-gated) link-state update, so a cached route must
  always equal a fresh recomputation on the current view;
* the signature-verification memo — the per-object verdict cache on
  :class:`~repro.messaging.message.Message` (keyed by PKI epoch) and the
  :class:`~repro.crypto.simulated.SimulatedVerifier` LRU (cleared on any
  key change) — which must never return a verdict computed under key
  material that has since rotated.

Hypothesis drives randomized update/query and rotate/sign/verify
interleavings and checks cached answers against cache-bypassing
recomputation at every step.
"""

from __future__ import annotations

import dataclasses
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.pki import Pki, PkiMode
from repro.messaging.message import Message, Semantics
from repro.routing.link_state import LinkStateUpdate
from repro.routing.state import RoutingState
from repro.routing.validation import UpdateResult
from repro.topology.disjoint import best_effort_disjoint_paths
from repro.topology.generators import random_connected
from repro.topology.mtmw import Mtmw

CACHE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (edge picker, weight multiplier over the MTMW floor, which endpoint
#: issues, whether to replay a stale seqno instead of a fresh one).
UPDATE_STEP = st.tuples(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from([1.0, 2.0, 10.0, 100.0]),
    st.booleans(),
    st.booleans(),
)


def _build_state(seed: int):
    topo = random_connected(6, extra_edges=5, rng=random.Random(seed))
    pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
    for node_id in topo.nodes:
        pki.register(node_id)
    mtmw = Mtmw.create(topo, pki)
    # A huge rate budget: this test is about cache invalidation, not the
    # per-issuer rate limiter.
    state = RoutingState(mtmw, pki, update_rate_per_second=1e6, update_burst=1_000_000)
    return topo, pki, state


def _assert_routes_fresh(state: RoutingState, pairs) -> None:
    """Every cached route equals a cache-bypassing recomputation."""
    for source, dest in pairs:
        fresh_graph = state.graph()
        expected_kp = best_effort_disjoint_paths(fresh_graph, source, dest, 2)
        expected_sp = fresh_graph.shortest_path(source, dest)
        # First call may compute-and-store, second must hit the cache;
        # both have to equal the bypassed recomputation.
        assert state.k_paths_best_effort(source, dest, 2) == expected_kp
        assert state.k_paths_best_effort(source, dest, 2) == expected_kp
        assert state.shortest_path(source, dest) == expected_sp
        assert state.shortest_path(source, dest) == expected_sp


@CACHE_SETTINGS
@given(st.integers(min_value=0, max_value=10_000), st.lists(UPDATE_STEP, max_size=12))
def test_route_cache_always_matches_fresh_recomputation(seed, steps):
    topo, pki, state = _build_state(seed)
    edges = sorted(topo.edges())
    nodes = sorted(topo.nodes)
    rng = random.Random(seed)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(3)]
    seqnos = {}

    _assert_routes_fresh(state, pairs)
    for edge_pick, factor, issue_from_b, replay_stale in steps:
        a, b = edges[edge_pick % len(edges)]
        issuer = b if issue_from_b else a
        last = seqnos.get((issuer, a, b), 0)
        seqno = last if replay_stale and last else last + 1
        seqnos[(issuer, a, b)] = seqno
        weight = state.mtmw.min_weight(a, b) * factor
        update = LinkStateUpdate.create(pki, issuer, a, b, weight, seqno)
        version_before = state.version
        result = state.apply_update(update, now=0.0)
        if replay_stale and last:
            # A replayed seqno is overtaken-by-events: the view (and thus
            # the cache keys) must not move.
            assert result is UpdateResult.STALE
            assert state.version == version_before
        else:
            assert result is UpdateResult.ACCEPTED
            assert state.version == version_before + 1
        _assert_routes_fresh(state, pairs)

    # The second lookup of every query above was a guaranteed hit; the
    # cache must actually be caching, not recomputing.
    hits, misses, _ = state.route_cache_stats
    assert hits >= misses


@CACHE_SETTINGS
@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.tuples(st.sampled_from(["rotate", "sign"]), st.sampled_from(["a", "b"])),
        max_size=10,
    ),
)
def test_verify_memo_never_stale_after_key_rotation(seed, ops):
    pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
    pki.register("a")
    pki.register("b")
    rotations = {"a": 0, "b": 0}
    held = []  # (message, source, source's rotation count at signing)
    seq = 0
    for op, who in ops:
        if op == "rotate":
            pki.rotate(who)
            rotations[who] += 1
        else:
            seq += 1
            message = Message(
                source=who,
                dest="b" if who == "a" else "a",
                seq=seq,
                semantics=Semantics.PRIORITY,
            ).sign(pki)
            assert message.verify(pki) is True
            held.append((message, who, rotations[who]))
        for message, source, rotation_at_sign in held:
            expected = rotations[source] == rotation_at_sign
            # Warm path (per-object cache + verifier memo), twice: a memo
            # hit must answer the same question as the cold computation.
            assert message.verify(pki) is expected
            assert message.verify(pki) is expected
            # A cold copy (``replace`` resets every cache slot) agrees.
            assert dataclasses.replace(message).verify(pki) is expected


@CACHE_SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_link_state_update_verify_not_stale_after_rotation(seed):
    pki = Pki(mode=PkiMode.SIMULATED, seed=seed)
    pki.register("x")
    pki.register("y")
    update = LinkStateUpdate.create(pki, "x", "x", "y", 0.01, seqno=1)
    # Verified at several hops: the second check is a verifier-memo hit.
    assert update.verify(pki) is True
    assert update.verify(pki) is True
    pki.rotate("x")
    # The old-key signature must not survive the rotation via the memo.
    assert update.verify(pki) is False
    assert update.verify(pki) is False
    fresh = LinkStateUpdate.create(pki, "x", "x", "y", 0.01, seqno=2)
    assert fresh.verify(pki) is True
