"""Unit tests for the overlay graph."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.topology.generators import clique, line, ring
from repro.topology.graph import Topology, edge_key


@pytest.fixture
def diamond():
    """1 - {2, 3} - 4 with unequal weights."""
    topo = Topology()
    topo.add_edge(1, 2, 1.0)
    topo.add_edge(2, 4, 1.0)
    topo.add_edge(1, 3, 1.5)
    topo.add_edge(3, 4, 1.5)
    return topo


class TestConstruction:
    def test_add_edge_adds_nodes(self, diamond):
        assert sorted(diamond.nodes) == [1, 2, 3, 4]
        assert diamond.edge_count == 4

    def test_weight_is_symmetric(self, diamond):
        assert diamond.weight(1, 2) == diamond.weight(2, 1) == 1.0

    def test_self_loop_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_edge(1, 1, 1.0)

    def test_nonpositive_weight_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_edge(1, 2, 0.0)

    def test_node_info(self):
        topo = Topology()
        topo.add_node(1, name="Tokyo", region="east-asia")
        assert topo.node_info[1]["name"] == "Tokyo"

    def test_remove_edge(self, diamond):
        diamond.remove_edge(1, 2)
        assert not diamond.has_edge(1, 2)
        assert not diamond.has_edge(2, 1)
        with pytest.raises(TopologyError):
            diamond.remove_edge(1, 2)

    def test_remove_node(self, diamond):
        diamond.remove_node(2)
        assert not diamond.has_node(2)
        assert not diamond.has_edge(1, 2)
        assert diamond.edge_count == 2

    def test_remove_unknown_node_rejected(self, diamond):
        with pytest.raises(TopologyError):
            diamond.remove_node(99)

    def test_set_weight(self, diamond):
        diamond.set_weight(1, 2, 5.0)
        assert diamond.weight(2, 1) == 5.0
        with pytest.raises(TopologyError):
            diamond.set_weight(1, 4, 5.0)
        with pytest.raises(TopologyError):
            diamond.set_weight(1, 2, -1.0)

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.set_weight(1, 2, 9.0)
        assert diamond.weight(1, 2) == 1.0
        clone.remove_node(3)
        assert diamond.has_node(3)

    def test_edges_enumerates_each_once(self, diamond):
        edges = diamond.edges()
        assert len(edges) == 4
        assert len({edge_key(a, b) for a, b in edges}) == 4

    def test_node_pairs(self, diamond):
        pairs = list(diamond.node_pairs())
        assert len(pairs) == 6  # C(4, 2)


class TestQueries:
    def test_neighbors(self, diamond):
        assert sorted(diamond.neighbors(1)) == [2, 3]
        assert diamond.degree(4) == 2

    def test_unknown_node_queries_raise(self, diamond):
        with pytest.raises(TopologyError):
            diamond.neighbors(99)
        with pytest.raises(TopologyError):
            diamond.weight(1, 99)


class TestShortestPath:
    def test_direct_neighbor(self, diamond):
        assert diamond.shortest_path(1, 2) == [1, 2]

    def test_prefers_lower_weight(self, diamond):
        assert diamond.shortest_path(1, 4) == [1, 2, 4]

    def test_same_node(self, diamond):
        assert diamond.shortest_path(1, 1) == [1]

    def test_disconnected_returns_none(self):
        topo = Topology()
        topo.add_edge(1, 2, 1.0)
        topo.add_node(3)
        assert topo.shortest_path(1, 3) is None

    def test_exclude_nodes_forces_detour(self, diamond):
        dist, _ = diamond.dijkstra(1, exclude_nodes={2})
        assert dist[4] == pytest.approx(3.0)

    def test_path_weight(self, diamond):
        assert diamond.path_weight([1, 2, 4]) == pytest.approx(2.0)
        assert diamond.path_weight([1]) == 0.0

    def test_line_path(self):
        topo = line(5)
        assert topo.shortest_path(1, 5) == [1, 2, 3, 4, 5]

    def test_deterministic_tie_breaking(self):
        """Equal-weight paths must resolve identically on every run."""
        topo = Topology()
        topo.add_edge(1, 2, 1.0)
        topo.add_edge(1, 3, 1.0)
        topo.add_edge(2, 4, 1.0)
        topo.add_edge(3, 4, 1.0)
        paths = {tuple(topo.shortest_path(1, 4)) for _ in range(10)}
        assert len(paths) == 1


class TestConnectivity:
    def test_connected(self, diamond):
        assert diamond.is_connected()

    def test_disconnected_after_cut(self, diamond):
        assert not diamond.is_connected(exclude_nodes={2, 3})

    def test_reachable_from(self, diamond):
        assert diamond.reachable_from(1) == {1, 2, 3, 4}
        assert diamond.reachable_from(1, exclude_nodes={2, 3}) == {1}
        assert diamond.reachable_from(1, exclude_nodes={1}) == set()

    def test_empty_topology_is_connected(self):
        assert Topology().is_connected()


class TestGenerators:
    def test_line(self):
        topo = line(4)
        assert topo.edge_count == 3

    def test_ring(self):
        topo = ring(5)
        assert topo.edge_count == 5
        assert all(topo.degree(v) == 2 for v in topo.nodes)

    def test_clique(self):
        topo = clique(5)
        assert topo.edge_count == 10
        assert all(topo.degree(v) == 4 for v in topo.nodes)

    def test_generator_validation(self):
        with pytest.raises(TopologyError):
            line(1)
        with pytest.raises(TopologyError):
            ring(2)
        with pytest.raises(TopologyError):
            clique(1)

    @given(st.integers(min_value=3, max_value=12))
    def test_property_ring_shortest_path_wraps(self, n):
        topo = ring(n)
        path = topo.shortest_path(1, n)
        assert path == [1, n]  # the wrap-around edge is the direct route
