"""Unit tests for Diffie-Hellman and HMAC primitives."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.dh import GROUP_PRIME, DiffieHellman
from repro.crypto.mac import (
    MAC_SIZE,
    BatchMacContext,
    hmac_sha256,
    truncated_hmac,
    verify_hmac,
)
from repro.errors import CryptoError, MacError


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        alice = DiffieHellman.from_seed(b"alice")
        bob = DiffieHellman.from_seed(b"bob")
        assert alice.compute_shared(bob.public) == bob.compute_shared(alice.public)

    def test_shared_secret_is_32_bytes(self):
        alice = DiffieHellman.from_seed(b"a")
        bob = DiffieHellman.from_seed(b"b")
        assert len(alice.compute_shared(bob.public)) == 32

    def test_third_party_derives_different_secret(self):
        alice = DiffieHellman.from_seed(b"alice")
        bob = DiffieHellman.from_seed(b"bob")
        eve = DiffieHellman.from_seed(b"eve")
        honest = alice.compute_shared(bob.public)
        assert eve.compute_shared(alice.public) != honest
        assert eve.compute_shared(bob.public) != honest

    @pytest.mark.parametrize("bad", [0, 1, GROUP_PRIME - 1, GROUP_PRIME, GROUP_PRIME + 5])
    def test_degenerate_peer_values_rejected(self, bad):
        alice = DiffieHellman.from_seed(b"alice")
        with pytest.raises(CryptoError):
            alice.compute_shared(bad)

    def test_out_of_range_private_rejected(self):
        with pytest.raises(CryptoError):
            DiffieHellman(private=0)

    def test_from_seed_deterministic(self):
        assert DiffieHellman.from_seed(b"s").public == DiffieHellman.from_seed(b"s").public

    def test_random_instances_differ(self):
        assert DiffieHellman().public != DiffieHellman().public

    def test_encode_public_roundtrips(self):
        alice = DiffieHellman.from_seed(b"alice")
        encoded = alice.encode_public()
        assert int.from_bytes(encoded, "big") == alice.public
        assert len(encoded) == (GROUP_PRIME.bit_length() + 7) // 8


class TestHmac:
    def test_matches_stdlib(self):
        key, msg = b"k" * 32, b"payload"
        assert hmac_sha256(key, msg) == std_hmac.new(key, msg, hashlib.sha256).digest()

    def test_verify_accepts_valid(self):
        tag = hmac_sha256(b"key", b"msg")
        verify_hmac(b"key", b"msg", tag)  # no raise

    def test_verify_rejects_tampered_message(self):
        tag = hmac_sha256(b"key", b"msg")
        with pytest.raises(MacError):
            verify_hmac(b"key", b"msG", tag)

    def test_verify_rejects_wrong_key(self):
        tag = hmac_sha256(b"key", b"msg")
        with pytest.raises(MacError):
            verify_hmac(b"yek", b"msg", tag)

    def test_mac_size(self):
        assert len(hmac_sha256(b"k", b"m")) == MAC_SIZE == 32

    def test_truncated_hmac(self):
        tag = truncated_hmac(b"k", b"m", size=16)
        assert len(tag) == 16
        assert tag == hmac_sha256(b"k", b"m")[:16]

    def test_truncation_below_16_rejected(self):
        with pytest.raises(MacError):
            truncated_hmac(b"k", b"m", size=8)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    def test_property_roundtrip(self, key, msg):
        verify_hmac(key, msg, hmac_sha256(key, msg))


class TestBatchMacContext:
    """The amortized per-link HMAC context must be byte-identical to the
    one-shot functions — batching is a key-schedule optimization, never a
    different MAC."""

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    def test_tag_matches_one_shot(self, key, msg):
        assert BatchMacContext(key).tag(msg) == hmac_sha256(key, msg)

    def test_context_is_reusable_across_messages(self):
        ctx = BatchMacContext(b"key")
        messages = [b"a", b"bb", b"", b"a"]  # repeats and empties included
        assert [ctx.tag(m) for m in messages] == [
            hmac_sha256(b"key", m) for m in messages
        ]

    def test_tags_batch_matches_one_shot(self):
        ctx = BatchMacContext(b"key")
        messages = [bytes([i]) * i for i in range(10)]
        assert ctx.tags(messages) == [hmac_sha256(b"key", m) for m in messages]

    def test_verify_accepts_and_rejects(self):
        ctx = BatchMacContext(b"key")
        tag = ctx.tag(b"msg")
        ctx.verify(b"msg", tag)  # no raise
        with pytest.raises(MacError):
            ctx.verify(b"msG", tag)

    def test_verify_batch_reports_per_pair_verdicts(self):
        ctx = BatchMacContext(b"key")
        good = (b"one", ctx.tag(b"one"))
        bad = (b"two", ctx.tag(b"one"))  # replayed tag, wrong message
        assert ctx.verify_batch([good, bad, good]) == [True, False, True]

    def test_rekey_switches_keys_completely(self):
        ctx = BatchMacContext(b"old")
        old_tag = ctx.tag(b"msg")
        ctx.rekey(b"new")
        assert ctx.tag(b"msg") == hmac_sha256(b"new", b"msg")
        assert ctx.tag(b"msg") != old_tag
        with pytest.raises(MacError):
            ctx.verify(b"msg", old_tag)
