"""Unit tests for Diffie-Hellman and HMAC primitives."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto.dh import GROUP_PRIME, DiffieHellman
from repro.crypto.mac import MAC_SIZE, hmac_sha256, truncated_hmac, verify_hmac
from repro.errors import CryptoError, MacError


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        alice = DiffieHellman.from_seed(b"alice")
        bob = DiffieHellman.from_seed(b"bob")
        assert alice.compute_shared(bob.public) == bob.compute_shared(alice.public)

    def test_shared_secret_is_32_bytes(self):
        alice = DiffieHellman.from_seed(b"a")
        bob = DiffieHellman.from_seed(b"b")
        assert len(alice.compute_shared(bob.public)) == 32

    def test_third_party_derives_different_secret(self):
        alice = DiffieHellman.from_seed(b"alice")
        bob = DiffieHellman.from_seed(b"bob")
        eve = DiffieHellman.from_seed(b"eve")
        honest = alice.compute_shared(bob.public)
        assert eve.compute_shared(alice.public) != honest
        assert eve.compute_shared(bob.public) != honest

    @pytest.mark.parametrize("bad", [0, 1, GROUP_PRIME - 1, GROUP_PRIME, GROUP_PRIME + 5])
    def test_degenerate_peer_values_rejected(self, bad):
        alice = DiffieHellman.from_seed(b"alice")
        with pytest.raises(CryptoError):
            alice.compute_shared(bad)

    def test_out_of_range_private_rejected(self):
        with pytest.raises(CryptoError):
            DiffieHellman(private=0)

    def test_from_seed_deterministic(self):
        assert DiffieHellman.from_seed(b"s").public == DiffieHellman.from_seed(b"s").public

    def test_random_instances_differ(self):
        assert DiffieHellman().public != DiffieHellman().public

    def test_encode_public_roundtrips(self):
        alice = DiffieHellman.from_seed(b"alice")
        encoded = alice.encode_public()
        assert int.from_bytes(encoded, "big") == alice.public
        assert len(encoded) == (GROUP_PRIME.bit_length() + 7) // 8


class TestHmac:
    def test_matches_stdlib(self):
        key, msg = b"k" * 32, b"payload"
        assert hmac_sha256(key, msg) == std_hmac.new(key, msg, hashlib.sha256).digest()

    def test_verify_accepts_valid(self):
        tag = hmac_sha256(b"key", b"msg")
        verify_hmac(b"key", b"msg", tag)  # no raise

    def test_verify_rejects_tampered_message(self):
        tag = hmac_sha256(b"key", b"msg")
        with pytest.raises(MacError):
            verify_hmac(b"key", b"msG", tag)

    def test_verify_rejects_wrong_key(self):
        tag = hmac_sha256(b"key", b"msg")
        with pytest.raises(MacError):
            verify_hmac(b"yek", b"msg", tag)

    def test_mac_size(self):
        assert len(hmac_sha256(b"k", b"m")) == MAC_SIZE == 32

    def test_truncated_hmac(self):
        tag = truncated_hmac(b"k", b"m", size=16)
        assert len(tag) == 16
        assert tag == hmac_sha256(b"k", b"m")[:16]

    def test_truncation_below_16_rejected(self):
        with pytest.raises(MacError):
            truncated_hmac(b"k", b"m", size=8)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    def test_property_roundtrip(self, key, msg):
        verify_hmac(key, msg, hmac_sha256(key, msg))
