"""End-to-end live chaos soak: the PR's acceptance gate.

One seeded 5-node live deployment runs under a handcrafted fault
schedule exercising every live fault family at once — wire noise (loss,
duplication, reordering, corruption, delay) on a busy edge, a
bidirectional partition, and two crash faults against the same node —
and must come out clean:

* >= 99% of messages between *non-faulted* endpoints delivered;
* zero :class:`InvariantMonitor` violations (no duplicate deliveries,
  no ordering violations, no routing through quarantined links);
* the crashed node restarted by the supervisor with exponential
  backoff, rejoining the overlay and receiving traffic again.

The same schedule shape runs in CI (``live-chaos`` job) via
``python -m repro live --chaos soak``; this test pins the semantics the
gate relies on.  A sim/live comparability case at the bottom closes the
loop on the shared fault vocabulary: the identical ``ChaosSpec`` preset
and seed drive both substrates.
"""

from __future__ import annotations

import asyncio
from typing import Tuple

import pytest

from repro.faults.chaos import ChaosEngine
from repro.faults.schedule import ChaosSpec, Fault, FaultSchedule
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.runtime.live import LiveConfig, LiveDeployment, live_topology
from repro.runtime.supervision import RUNNING

NODES = 5
DURATION = 6.0
SEED = 11

#: Every live fault family at once: sustained wire noise on edge (1, 2),
#: two crash faults against node 3, and node 4 partitioned away for a
#: window.  Times leave the drain tail (the last second) fault-free so
#: in-flight traffic between healthy nodes can settle.
SOAK_FAULTS: Tuple[Fault, ...] = (
    Fault(0.5, "noise", (1, 2), 5.0, (
        ("corrupt", 0.1), ("dup", 0.1), ("extra_delay", 0.005),
        ("extra_loss", 0.1), ("reorder", 0.2),
    )),
    Fault(1.0, "crash", (3,), 0.5, ()),
    Fault(2.0, "partition", (4,), 0.6, ()),
    Fault(3.0, "crash", (3,), 0.4, ()),
)


@pytest.fixture(scope="module")
def soak():
    """Run the soak once; every test below asserts against its report."""
    schedule = FaultSchedule(faults=SOAK_FAULTS, seed=SEED, duration=DURATION)

    async def drive():
        deployment = LiveDeployment(LiveConfig(
            nodes=NODES, duration=DURATION, seed=SEED, chaos=schedule,
        ))
        delivered_at_3 = []
        await deployment.start()
        deployment.processes[3].overlay.delivery_observers.append(
            lambda message, node: delivered_at_3.append(node.sim.now)
        )
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        return deployment, deployment.report(), delivered_at_3

    return asyncio.run(drive())


def test_soak_meets_correct_flow_delivery_floor(soak):
    _, report, _ = soak
    assert not report.runtime_errors, report.runtime_errors
    assert not report.failed
    # The acceptance bar: >= 99% of correct-flow messages delivered.
    assert report.correct_flow_ratio >= 0.99, report.to_dict()["flows"]
    # Crashed and partitioned nodes are the excluded set — nothing else.
    assert report.faulted_node_ids == {"3", "4"}
    assert report.ok


def test_soak_has_zero_invariant_violations(soak):
    _, report, _ = soak
    assert report.invariants is not None
    assert report.invariants["violations"] == 0
    # The monitor was genuinely watching, not idle.
    assert report.invariants["deliveries_checked"] > 0


def test_soak_applied_every_fault_family_on_the_wire(soak):
    _, report, _ = soak
    injector = report.chaos["injector"]
    for action in ("losses", "duplicates", "reorders", "corruptions",
                   "partition_drops", "delayed"):
        assert injector[action] > 0, (action, injector)
    # Corrupted datagrams were rejected at decode by the CRC trailer —
    # they never reached protocol state.
    assert report.transport["decode_errors"] > 0
    assert report.chaos["schedule_counts"]["crash"] == 2


def test_soak_restarts_crashed_node_with_growing_backoff(soak):
    deployment, report, _ = soak
    node = report.supervision["nodes"]["3"]
    assert node["kills"] == 2
    assert node["restarts"] == 2
    assert node["state"] == RUNNING
    # Exponential backoff: the second restart waited longer (jitter
    # bands of consecutive attempts are disjoint at factor 2).
    assert len(node["backoffs"]) == 2
    assert node["backoffs"][0] < node["backoffs"][1]
    assert report.supervision["broken"] == []
    # Only node 3 was supervised-killed.
    assert report.supervision["crashed_nodes"] == ["3"]
    assert deployment.supervisor.total_restarts == 2


def test_soak_crashed_node_rejoins_and_receives_again(soak):
    deployment, _, delivered_at_3 = soak
    restart_times = [
        time for time, text in deployment.supervisor.events
        if text.startswith("restart 3")
    ]
    assert len(restart_times) == 2
    # Traffic reached node 3 after its final restart: the fresh socket
    # was re-announced to every neighbor and routing re-converged.
    last_restart = restart_times[-1]
    assert any(time > last_restart for time in delivered_at_3)


# ----------------------------------------------------------------------
# Shared fault vocabulary: one preset + seed, both substrates
# ----------------------------------------------------------------------
def test_preset_schedule_generation_is_deterministic():
    topo = live_topology(NODES)
    spec = ChaosSpec.live_soak(duration=DURATION)
    first = spec.generate(topo, seed=SEED)
    second = spec.generate(topo, seed=SEED)
    assert first.describe() == second.describe()
    assert spec.generate(topo, seed=SEED + 1).describe() != first.describe()


def test_sim_and_live_runs_are_comparable_under_the_same_preset():
    """The conformance closure: one ``ChaosSpec.live_soak`` schedule
    (noise-only at this seed) drives the sim's ChaosEngine and the live
    injector; both substrates must absorb it without violations and
    deliver everything between non-faulted nodes."""
    topo = live_topology(4)
    schedule = ChaosSpec.live_soak(duration=2.5).generate(topo, seed=0)
    counts = schedule.counts()
    assert counts["noise"] >= 1 and counts["crash"] == 0  # seed contract

    # Sim substrate: the same schedule through the by-reference engine
    # (noise projects onto channel loss/delay there).
    net = OverlayNetwork.build(
        topo, OverlayConfig(link_bandwidth_bps=None), seed=0
    )
    engine = ChaosEngine(net, schedule)
    engine.arm()
    client = net.client(3)

    def tick(remaining=[20]):
        if remaining[0] > 0:
            remaining[0] -= 1
            client.send_priority(2, size_bytes=64)
            net.sim.schedule(0.1, tick)

    net.sim.schedule(0.1, tick)
    net.run(8.0)
    assert engine.summary()["skipped"] == 0
    assert net.delivered_count(3, 2) == 20  # retransmission beats noise

    # Live substrate: the identical schedule against real sockets.
    from repro.runtime.live import run_live

    live_report = run_live(LiveConfig(
        nodes=4, duration=2.5, seed=0, chaos=schedule,
    ))
    assert live_report.invariants["violations"] == 0
    assert live_report.chaos["schedule_counts"] == counts
    assert live_report.correct_flow_ratio == 1.0  # noise-only: no faulted nodes
    assert live_report.chaos["injector"]["losses"] >= 0
    assert live_report.ok
