"""Unit tests for the round-robin fair link scheduler."""

from repro.messaging.scheduler import RoundRobinQueue


class TestRoundRobin:
    def test_serves_in_activation_order(self):
        rr = RoundRobinQueue()
        for key in "abc":
            rr.activate(key)
        served = [rr.select(lambda k: True) for _ in range(6)]
        assert served == ["a", "b", "c", "a", "b", "c"]

    def test_activate_is_idempotent(self):
        rr = RoundRobinQueue()
        rr.activate("a")
        rr.activate("a")
        assert len(rr) == 1

    def test_workless_keys_removed(self):
        rr = RoundRobinQueue()
        rr.activate("idle")
        rr.activate("busy")
        assert rr.select(lambda k: k == "busy") == "busy"
        assert "idle" not in rr
        assert len(rr) == 1

    def test_empty_queue_returns_none(self):
        rr = RoundRobinQueue()
        assert rr.select(lambda k: True) is None

    def test_all_workless_returns_none_and_empties(self):
        rr = RoundRobinQueue()
        for key in "ab":
            rr.activate(key)
        assert rr.select(lambda k: False) is None
        assert len(rr) == 0

    def test_reactivation_appends_to_end(self):
        rr = RoundRobinQueue()
        rr.activate("a")
        rr.activate("b")
        rr.select(lambda k: True)  # serves a, moves it back
        rr.activate("c")
        served = [rr.select(lambda k: True) for _ in range(3)]
        assert served == ["b", "a", "c"]

    def test_fairness_under_unequal_demand(self):
        """A key with more work must not get more turns."""
        rr = RoundRobinQueue()
        work = {"greedy": 100, "modest": 5}
        for key in work:
            rr.activate(key)
        turns = {"greedy": 0, "modest": 0}
        while True:
            key = rr.select(lambda k: work[k] > 0)
            if key is None:
                break
            work[key] -= 1
            turns[key] += 1
            if work[key] > 0:
                rr.activate(key)
        assert turns["modest"] == 5
        # While modest was active, greedy got exactly alternating turns.
        assert turns["greedy"] == 100
