"""Smoke tests: every CLI subcommand runs end-to-end via ``cli.main``.

Each case invokes the real argparse entry point with fast parameters and
asserts a zero exit code plus non-empty output — the contract a user (or
a CI script) relies on for ``python -m repro <command>``.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro import cli

SMOKE_CASES = [
    pytest.param(["info"], id="info"),
    pytest.param(["demo", "--seed", "7"], id="demo"),
    pytest.param(
        ["experiment", "--flows", "1", "--seconds", "2", "--rate", "0.2"],
        id="experiment",
    ),
    pytest.param(
        ["turret", "--iterations", "1", "--seconds", "2", "--seed", "0"],
        id="turret",
    ),
    pytest.param(
        ["chaos", "--seconds", "5", "--flows", "1", "--link-level",
         "--print-schedule"],
        id="chaos",
    ),
    pytest.param(
        ["stats", "--seconds", "2", "--flows", "1"],
        id="stats",
    ),
    pytest.param(
        ["live", "--nodes", "2", "--duration", "1", "--rate", "10"],
        id="live",
    ),
    pytest.param(
        ["live", "--nodes", "3", "--duration", "1.5", "--rate", "10",
         "--chaos", "soak", "--seed", "5"],
        id="live-chaos",
    ),
    pytest.param(
        ["stats", "--live", "--seconds", "1", "--seed", "5"],
        id="stats-live",
    ),
    pytest.param(
        ["cluster", "--nodes", "6", "--shards", "2", "--duration", "2",
         "--rate", "5", "--joins", "0", "--leaves", "0", "--seed", "4"],
        id="cluster",
    ),
    pytest.param(
        ["perfbench", "--quick", "--seed", "0"],
        id="perfbench",
    ),
    pytest.param(
        ["overload", "--nodes", "6", "--duration", "2", "--drain", "1",
         "--base-rate", "10", "--multipliers", "1,4", "--seed", "0"],
        id="overload",
    ),
    pytest.param(
        ["slo", "--nodes", "6", "--duration", "2", "--drain", "1",
         "--base-rate", "10", "--multipliers", "1", "--intensity", "0",
         "--skip-off", "--seed", "0"],
        id="slo",
    ),
]


@pytest.mark.parametrize("argv", SMOKE_CASES)
def test_subcommand_smoke(argv, capsys):
    exit_code = cli.main(argv)
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert out.strip(), f"{argv[0]} produced no output"


def test_parser_covers_every_command():
    # The smoke list above must not silently fall behind the parser.
    parser = cli.build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    assert sorted(sub.choices) == sorted({case.values[0][0] for case in SMOKE_CASES})


def test_stats_json_is_valid(tmp_path):
    out_path = tmp_path / "report.json"
    exit_code = cli.main(
        ["stats", "--seconds", "2", "--flows", "1", "--output", str(out_path)]
    )
    assert exit_code == 0
    report = json.loads(out_path.read_text())
    assert report["params"]["flows"] == 1


def test_live_json_report_and_min_delivery(tmp_path, capsys):
    out_path = tmp_path / "live.json"
    exit_code = cli.main(
        ["live", "--nodes", "2", "--duration", "1", "--rate", "10",
         "--output", str(out_path), "--min-delivery", "0.9"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0, out
    report = json.loads(out_path.read_text())
    assert report["nodes"] == 2
    assert report["delivery_ratio"] >= 0.9
    assert not report["runtime_errors"]


def test_live_chaos_report_sections(tmp_path, capsys):
    out_path = tmp_path / "live_chaos.json"
    exit_code = cli.main(
        ["live", "--nodes", "3", "--duration", "1.5", "--rate", "10",
         "--chaos", "soak", "--seed", "5", "--min-delivery", "0.99",
         "--output", str(out_path)]
    )
    out = capsys.readouterr().out
    assert exit_code == 0, out
    assert "chaos:" in out and "supervision:" in out and "invariants:" in out
    assert "rx drops:" in out
    report = json.loads(out_path.read_text())
    assert report["chaos"]["injector"].keys() >= {"losses", "duplicates"}
    assert "kills" in report["supervision"]
    assert report["invariants"]["violations"] == 0
    assert report["ok"] is True


def test_live_min_delivery_gate_fails_when_unreachable(capsys):
    # An impossible bar (> 100%) must flip the exit code — this is the
    # CI gate's failure path.
    exit_code = cli.main(
        ["live", "--nodes", "2", "--duration", "1", "--rate", "10",
         "--min-delivery", "1.1"]
    )
    capsys.readouterr()
    assert exit_code == 1
