"""Unit tests for the live runtime's node supervisor.

The supervisor is exercised against a fake deployment (no sockets, no
overlay) so the restart policy — exponential backoff with jitter, hold
semantics, the max-restart circuit breaker, watchdog detection of dead
sockets — is tested in isolation from the network stack.  The end-to-end
kill/restart path over real sockets is covered by
``tests/test_live_chaos.py``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ConfigurationError, LiveRuntimeError
from repro.runtime.supervision import (
    BROKEN,
    DOWN,
    RUNNING,
    NodeSupervisor,
    SupervisionConfig,
)


class FakeRngs:
    def stream(self, name):
        return random.Random(hash(name) & 0xFFFF)


class FakeSim:
    """Clock + rng surface of the scheduler, on real loop time."""

    def __init__(self):
        self.rngs = FakeRngs()

    @property
    def now(self):
        return asyncio.get_event_loop().time()


class FakePor:
    def __init__(self):
        self.resets = 0

    def reset(self):
        self.resets += 1


class FakeLink:
    def __init__(self):
        self.por = FakePor()


class FakeOverlay:
    def __init__(self, neighbors):
        self.links = {n: FakeLink() for n in neighbors}


class FakeCounter:
    def __init__(self):
        self.value = 0

    def add(self, amount=1):
        self.value += amount


class FakeStats:
    def __init__(self):
        self.counters = {}

    def counter(self, name):
        return self.counters.setdefault(name, FakeCounter())


class FakeTransport:
    def __init__(self):
        self._open = True
        self.reopens = 0
        self.fail_reopen = False
        self.peer_updates = []
        self.last_local_port = None
        #: Ports that fail to bind (simulating another process holding
        #: them); port 0 stands for a fresh ephemeral bind.
        self.busy_ports = set()
        self.reopen_ports = []  # every attempted bind, in order

    @property
    def closed(self):
        return not self._open

    def close(self):
        self._open = False

    async def reopen(self, port=0):
        self.reopen_ports.append(port)
        if self.fail_reopen or port in self.busy_ports:
            raise OSError("address in use")
        self._open = True
        self.reopens += 1
        bound = port if port else 40_000 + self.reopens
        self.last_local_port = bound
        return ("127.0.0.1", bound)

    def update_peer_address(self, peer_id, address):
        self.peer_updates.append((peer_id, address))


class FakeProcess:
    def __init__(self, neighbors):
        self.transport = FakeTransport()
        self.overlay = FakeOverlay(neighbors)
        self.stats = FakeStats()


class FakeTopology:
    """A triangle: every node neighbors the other two."""

    def __init__(self, nodes):
        self._nodes = list(nodes)

    def neighbors(self, node_id):
        return [n for n in self._nodes if n != node_id]


class FakeDeployment:
    def __init__(self, nodes=("a", "b", "c")):
        self.sim = FakeSim()
        self.topology = FakeTopology(nodes)
        self.processes = {
            n: FakeProcess([m for m in nodes if m != n]) for n in nodes
        }
        self.lifecycle = []  # interleaved crash/recover log

    def crash(self, node_id):
        self.lifecycle.append(("crash", node_id))

    def recover(self, node_id):
        self.lifecycle.append(("recover", node_id))


FAST = SupervisionConfig(
    backoff_initial=0.05,
    backoff_factor=2.0,
    backoff_max=1.0,
    backoff_jitter=0.1,
    max_restarts=8,
    watchdog_interval=0.01,
)


def run(coro):
    return asyncio.run(coro)


async def eventually(predicate, timeout=3.0, interval=0.01):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Configuration and lifecycle guards
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ConfigurationError):
        SupervisionConfig(backoff_initial=0.0)
    with pytest.raises(ConfigurationError):
        SupervisionConfig(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        SupervisionConfig(backoff_max=0.01, backoff_initial=0.25)
    with pytest.raises(ConfigurationError):
        SupervisionConfig(backoff_jitter=1.0)
    with pytest.raises(ConfigurationError):
        SupervisionConfig(max_restarts=0)
    with pytest.raises(ConfigurationError):
        SupervisionConfig(watchdog_interval=0.0)


def test_double_arm_and_unknown_node_rejected():
    async def check():
        supervisor = NodeSupervisor(FakeDeployment(), FAST)
        supervisor.arm()
        try:
            with pytest.raises(LiveRuntimeError):
                supervisor.arm()
            with pytest.raises(LiveRuntimeError):
                supervisor.kill("stranger")
        finally:
            supervisor.stop()

    run(check())


# ----------------------------------------------------------------------
# Kill -> backoff -> restart
# ----------------------------------------------------------------------
def test_kill_closes_socket_and_watchdog_restarts():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            supervisor.kill("a", reason="test")
            record = supervisor.records["a"]
            assert record.state == DOWN
            assert deployment.processes["a"].transport.closed
            assert deployment.lifecycle == [("crash", "a")]

            assert await eventually(lambda: record.state == RUNNING)
            assert record.restarts == 1
            assert deployment.lifecycle[-1] == ("recover", "a")
            transport = deployment.processes["a"].transport
            assert transport.reopens == 1
            # Both neighbors were re-pointed at the fresh address and
            # reset their node-facing PoR epoch.
            for neighbor in ("b", "c"):
                peer = deployment.processes[neighbor]
                assert peer.transport.peer_updates == [
                    ("a", ("127.0.0.1", 40_001))
                ]
                assert peer.overlay.links["a"].por.resets == 1
        finally:
            supervisor.stop()

    run(check())


def test_backoffs_grow_exponentially_within_jitter_bounds():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            record = supervisor.records["a"]
            for expected_restarts in (1, 2, 3):
                supervisor.kill("a")
                assert await eventually(
                    lambda: record.restarts == expected_restarts
                )
            backoffs = record.backoffs
            assert len(backoffs) == 3
            # Strictly increasing: with jitter 0.1 and factor 2 the
            # jitter bands (base * [0.9, 1.1]) never overlap.
            assert backoffs[0] < backoffs[1] < backoffs[2]
            for attempt, backoff in enumerate(backoffs):
                base = FAST.backoff_initial * FAST.backoff_factor ** attempt
                assert base * 0.9 <= backoff <= base * 1.1
        finally:
            supervisor.stop()

    run(check())


def test_backoff_caps_at_configured_maximum():
    async def check():
        config = SupervisionConfig(
            backoff_initial=0.02, backoff_factor=10.0, backoff_max=0.05,
            backoff_jitter=0.0, watchdog_interval=0.01,
        )
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, config)
        supervisor.arm()
        try:
            record = supervisor.records["a"]
            for expected_restarts in (1, 2):
                supervisor.kill("a")
                assert await eventually(
                    lambda: record.restarts == expected_restarts
                )
            assert record.backoffs[1] == config.backoff_max
        finally:
            supervisor.stop()

    run(check())


def test_held_node_waits_for_release():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            supervisor.kill("b", reason="chaos", hold=True)
            record = supervisor.records["b"]
            # Well past the first backoff's jitter band: still held down.
            await asyncio.sleep(0.15)
            assert record.state == DOWN
            supervisor.release("b")
            assert await eventually(lambda: record.state == RUNNING)
        finally:
            supervisor.stop()

    run(check())


def test_overlapping_kill_extends_hold_without_double_counting():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            supervisor.kill("a")
            supervisor.kill("a", hold=True)  # overlapping fault
            record = supervisor.records["a"]
            assert record.kills == 1
            assert record.held  # the second fault's hold sticks
            assert deployment.lifecycle.count(("crash", "a")) == 1
            supervisor.release("a")
            assert await eventually(lambda: record.state == RUNNING)
        finally:
            supervisor.stop()

    run(check())


# ----------------------------------------------------------------------
# Watchdog and circuit breaker
# ----------------------------------------------------------------------
def test_watchdog_notices_silently_dead_socket():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            # The socket dies without anyone calling kill().
            deployment.processes["c"].transport.close()
            record = supervisor.records["c"]
            assert await eventually(lambda: record.kills == 1)
            assert "watchdog" in record.last_reason
            assert await eventually(lambda: record.state == RUNNING)
        finally:
            supervisor.stop()

    run(check())


def test_circuit_breaker_gives_up_after_max_restarts():
    async def check():
        config = SupervisionConfig(
            backoff_initial=0.01, backoff_factor=1.0, backoff_max=0.01,
            backoff_jitter=0.0, max_restarts=3, watchdog_interval=0.01,
        )
        deployment = FakeDeployment()
        deployment.processes["a"].transport.fail_reopen = True
        supervisor = NodeSupervisor(deployment, config)
        supervisor.arm()
        try:
            supervisor.kill("a")
            record = supervisor.records["a"]
            assert await eventually(lambda: record.state == BROKEN)
            assert record.restarts == 0
            assert record.consecutive_failures == config.max_restarts
            # Broken is terminal: further kills are no-ops...
            supervisor.kill("a")
            assert record.kills == 1
            # ...and the watchdog never touches it again.
            await asyncio.sleep(0.05)
            assert record.state == BROKEN
            summary = supervisor.summary()
            assert summary["broken"] == ["a"]
            stats = deployment.processes["a"].stats
            assert stats.counter("supervisor.broken").value == 1
            assert stats.counter("supervisor.restart_failures").value == 3
        finally:
            supervisor.stop()

    run(check())


def test_summary_shape_and_counters():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            supervisor.kill("a")
            assert await eventually(
                lambda: supervisor.records["a"].state == RUNNING
            )
            summary = supervisor.summary()
            assert summary["kills"] == 1
            assert summary["restarts"] == 1
            assert summary["crashed_nodes"] == ["a"]
            assert set(summary["nodes"]) == {"a", "b", "c"}
            node = summary["nodes"]["a"]
            assert node["state"] == RUNNING
            assert len(node["backoffs"]) == 1
            stats = deployment.processes["a"].stats
            assert stats.counter("supervisor.kills").value == 1
            assert stats.counter("supervisor.restarts").value == 1
        finally:
            supervisor.stop()

    run(check())


# ----------------------------------------------------------------------
# Port reclamation on restart (bounded rebind attempts)
# ----------------------------------------------------------------------
def test_rebind_reclaims_previous_port_first():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            transport = deployment.processes["a"].transport
            transport.last_local_port = 45_678
            supervisor.kill("a")
            assert await eventually(
                lambda: supervisor.records["a"].state == RUNNING
            )
            # One bind attempt, straight at the old port: peers'
            # registrations stay valid without any re-announce.
            assert transport.reopen_ports == [45_678]
            assert transport.last_local_port == 45_678
        finally:
            supervisor.stop()

    run(check())


def test_rebind_falls_back_to_ephemeral_when_port_taken():
    async def check():
        deployment = FakeDeployment()
        supervisor = NodeSupervisor(deployment, FAST)
        supervisor.arm()
        try:
            transport = deployment.processes["a"].transport
            transport.last_local_port = 45_678
            transport.busy_ports = {45_678}  # another process won the bind race
            supervisor.kill("a")
            assert await eventually(
                lambda: supervisor.records["a"].state == RUNNING
            )
            assert transport.reopen_ports == [45_678, 0]
            # Peers were re-pointed at the fresh ephemeral address.
            for other in ("b", "c"):
                peer = deployment.processes[other].transport
                assert ("a", ("127.0.0.1", transport.last_local_port)) \
                    in peer.peer_updates
        finally:
            supervisor.stop()

    run(check())


def test_rebind_attempts_are_bounded():
    async def check():
        deployment = FakeDeployment()
        config = SupervisionConfig(
            backoff_initial=0.05, watchdog_interval=0.01, rebind_attempts=3
        )
        supervisor = NodeSupervisor(deployment, config)
        transport = deployment.processes["a"].transport
        transport.last_local_port = 45_678
        transport.fail_reopen = True  # every bind fails
        with pytest.raises(OSError):
            await supervisor._rebind(transport)
        # Old port first, then exactly (attempts - 1) ephemeral retries.
        assert transport.reopen_ports == [45_678, 0, 0]

    run(check())


def test_rebind_against_real_prebound_socket():
    """Satellite regression: a real UDP socket squats the node's old
    port, so the reclaim attempt genuinely fails at the OS level and the
    bounded fallback must deliver a working ephemeral bind."""
    import socket

    from repro.runtime.transport import AsyncioUdpTransport

    async def check():
        transport = await AsyncioUdpTransport.open("n1")
        old_port = transport.local_address[1]
        transport.close()
        await asyncio.sleep(0.05)  # asyncio closes the fd on a later tick
        squatter = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        squatter.bind(("127.0.0.1", old_port))
        try:
            deployment = FakeDeployment()
            supervisor = NodeSupervisor(deployment, FAST)
            address = await supervisor._rebind(transport)
            assert address[1] != old_port  # fell back to an ephemeral port
            assert not transport.closed
        finally:
            squatter.close()
            transport.close()

    run(check())
