"""Hostile-input fuzzing for the live wire path (Hypothesis).

The live chaos engine corrupts real datagrams in flight, and an attacker
can spray a node's UDP port with anything at all.  These tests pin the
robustness contract end to end:

* ``decode_datagram`` raises the typed :class:`WireDecodeError` — never a
  primitive ``struct.error`` / ``IndexError`` / ``MemoryError`` — for
  truncated, bit-flipped, oversized, or arbitrary junk input;
* the CRC-32 integrity trailer makes rejection of *any* single bit flip
  a guarantee, not a likelihood — so a corrupted sequence number or
  epoch can never reach Proof-of-Receipt state (the failure mode behind
  an unbounded gap scan found by the live soak);
* :class:`AsyncioUdpTransport` counts every drop by reason and keeps
  serving;
* the PoR receive path bounds accepted sequence numbers, so even a
  well-formed datagram with a hostile seq cannot poison the reorder
  buffer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pki import Pki, PkiMode
from repro.errors import WireDecodeError
from repro.link.por import PorData, _HelloWrapper, connect_por_pair
from repro.messaging.message import Hello
from repro.runtime.transport import AsyncioUdpTransport
from repro.runtime.wire import MAX_BODY, decode_datagram, encode_datagram
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator


def make_link():
    sim = Simulator(seed=0)
    pki = Pki(mode=PkiMode.SIMULATED, seed=0, rsa_bits=256)
    pki.register("a")
    pki.register("b")
    cfg = ChannelConfig(latency=0.01)
    ab = Channel(sim, cfg, name="a->b")
    ba = Channel(sim, cfg, name="b->a")
    end_a, end_b = connect_por_pair(sim, "a", "b", ab, ba, pki)
    delivered_b = []
    end_b.on_deliver = lambda payload, size: delivered_b.append(payload)
    return sim, end_a, end_b, delivered_b


def valid_datagram(stamp=1):
    return encode_datagram("peer", "n", _HelloWrapper(Hello("peer", stamp)))


# ----------------------------------------------------------------------
# Codec: every defect is the typed error, bit flips are always caught
# ----------------------------------------------------------------------
@given(data=st.data())
@settings(max_examples=300)
def test_any_single_bit_flip_is_rejected(data):
    encoded = bytearray(valid_datagram())
    position = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    bit = data.draw(st.integers(min_value=0, max_value=7))
    encoded[position] ^= 1 << bit
    # Not "never crashes" — *always rejected*: the CRC covers header and
    # body, so a flipped bit anywhere cannot decode successfully.
    with pytest.raises(WireDecodeError):
        decode_datagram(bytes(encoded))


@given(data=st.data())
@settings(max_examples=200)
def test_multi_byte_corruption_never_escapes_typed_error(data):
    encoded = bytearray(valid_datagram())
    for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
        position = data.draw(
            st.integers(min_value=0, max_value=len(encoded) - 1)
        )
        encoded[position] = data.draw(st.integers(min_value=0, max_value=255))
    try:
        decoded = decode_datagram(bytes(encoded))
    except WireDecodeError:
        return
    # Astronomically unlikely (CRC collision), but if it decodes it must
    # at least be a structurally complete datagram.
    assert decoded.packet is not None


@given(junk=st.binary(max_size=2048))
@settings(max_examples=300)
def test_arbitrary_junk_raises_typed_error_or_nothing(junk):
    with pytest.raises(WireDecodeError):
        decode_datagram(junk)


@given(cut=st.integers(min_value=0, max_value=200))
@settings(max_examples=100)
def test_every_truncation_is_rejected(cut):
    encoded = valid_datagram()
    truncated = encoded[: min(cut, len(encoded) - 1)]
    with pytest.raises(WireDecodeError):
        decode_datagram(truncated)


@given(cut=st.integers(min_value=0, max_value=300))
@settings(max_examples=100)
def test_every_nack_truncation_is_rejected(cut):
    """The typed admission NACK (payload tag 8) is the newest wire
    payload; a truncated one must die in the codec as the typed error,
    never as a struct/index error inside the field readers."""
    from repro.link.por import PorData
    from repro.messaging.message import AdmissionNack

    packet = PorData(
        epoch=1, seq=2, nonce=b"n" * 8,
        payload=AdmissionNack(
            ingress=3, home=7, client="sessions:3/s0",
            key="sessions:3/s0#41", outcome="expired", seq=41,
        ),
        wire_size=AdmissionNack.WIRE_SIZE,
    )
    packet.mac = b"m" * 8
    encoded = encode_datagram("a", "b", packet)
    truncated = encoded[: min(cut, len(encoded) - 1)]
    with pytest.raises(WireDecodeError):
        decode_datagram(truncated)


def test_oversized_length_claim_rejected_without_allocation():
    import struct

    from repro.runtime.wire import MAGIC, VERSION

    header = MAGIC + struct.pack(">BBII", VERSION, 0, MAX_BODY + 1, 0)
    with pytest.raises(WireDecodeError, match="maximum"):
        decode_datagram(header + b"\x00" * 64)


def _forge_valid_crc(body: bytes) -> bytes:
    """A datagram whose header and CRC are valid over an arbitrary body,
    so decoding reaches the *field readers* — the layer whose hostile
    length-prefix guards these tests pin (the CRC only catches in-flight
    corruption, not a malicious sender who checksums their own junk)."""
    import struct
    import zlib

    from repro.runtime.wire import MAGIC, VERSION

    header = MAGIC + struct.pack(">BBI", VERSION, 0, len(body))
    return header + struct.pack(">I", zlib.crc32(header + body)) + body


@given(claim=st.integers(min_value=0, max_value=0xFFFF))
@settings(max_examples=200)
def test_hostile_string_length_prefix_rejected(claim):
    # The sender node id "peer" is the body's first field: a 1-byte
    # string tag then a u16 length prefix.  Replace the prefix with an
    # arbitrary claim (and re-checksum, as a hostile sender would): any
    # wrong claim must fail fast and typed — an over-long claim would
    # read past the body, a short one desynchronizes every later field.
    import struct

    from repro.runtime.wire import HEADER_SIZE

    body = bytearray(valid_datagram()[HEADER_SIZE:])
    true_len = struct.unpack_from(">H", body, 1)[0]
    if claim == true_len:
        return
    struct.pack_into(">H", body, 1, claim)
    with pytest.raises(WireDecodeError):
        decode_datagram(_forge_valid_crc(bytes(body)))


@given(body=st.binary(max_size=512))
@settings(max_examples=300)
def test_correctly_checksummed_junk_body_never_escapes_typed_error(body):
    # With the CRC neutralized, every interior length/count prefix guard
    # stands alone: arbitrary bodies must either decode (a structurally
    # complete datagram by pure chance) or raise the typed error.
    try:
        decoded = decode_datagram(_forge_valid_crc(body))
    except WireDecodeError:
        return
    assert decoded.packet is not None


# ----------------------------------------------------------------------
# Transport: hostile datagrams are counted and dropped, never raised
# ----------------------------------------------------------------------
def test_transport_counts_drops_by_reason():
    transport = AsyncioUdpTransport("n")
    transport.register_peer("peer", ("127.0.0.1", 9))
    hello = _HelloWrapper(Hello("peer", 1))
    source = ("127.0.0.1", 55_555)

    flipped = bytearray(valid_datagram())
    flipped[-1] ^= 0x01
    transport.datagram_received(bytes(flipped), source)          # corrupted
    transport.datagram_received(b"\x00" * 40, source)            # junk
    transport.datagram_received(
        encode_datagram("peer", "other", hello), source          # misdirected
    )
    transport.datagram_received(
        encode_datagram("mallory", "n", hello), source           # unknown
    )
    assert transport.decode_errors == 2
    assert transport.misdirected == 1
    assert transport.unknown_sender == 1
    assert transport.datagrams_received == 4

    # The valid path still works after the hostile barrage.
    received = []
    transport.receive_channel("peer").on_receive = received.append
    transport.datagram_received(encode_datagram("peer", "n", hello), source)
    assert len(received) == 1


@given(junk=st.binary(max_size=512))
@settings(max_examples=200)
def test_transport_survives_arbitrary_spray(junk):
    transport = AsyncioUdpTransport("n")
    before = transport.decode_errors
    transport.datagram_received(junk, ("127.0.0.1", 1))
    assert transport.decode_errors == before + 1


def test_dispatch_error_hook_swallows_poisoned_handler():
    transport = AsyncioUdpTransport("n")
    transport.register_peer("peer", ("127.0.0.1", 9))
    reported = []
    transport.on_dispatch_error = reported.append
    transport.receive_channel("peer").on_receive = lambda packet: 1 / 0
    transport.datagram_received(
        valid_datagram(), ("127.0.0.1", 55_555)
    )
    assert transport.dispatch_errors == 1
    assert len(reported) == 1
    assert isinstance(reported[0], ZeroDivisionError)


def test_dispatch_error_without_hook_propagates():
    transport = AsyncioUdpTransport("n")
    transport.register_peer("peer", ("127.0.0.1", 9))
    transport.receive_channel("peer").on_receive = lambda packet: 1 / 0
    with pytest.raises(ZeroDivisionError):
        transport.datagram_received(valid_datagram(), ("127.0.0.1", 5))
    assert transport.dispatch_errors == 1


# ----------------------------------------------------------------------
# PoR: hostile sequence numbers are bounded out, not buffered
# ----------------------------------------------------------------------
def test_por_rejects_sequence_numbers_beyond_reorder_horizon():
    sim, end_a, end_b, delivered_b = make_link()
    end_a.send(b"hi", 64)
    sim.run(until=1.0)
    assert delivered_b == [b"hi"]

    window = end_b.config.window
    expected = end_b._chain.next_seq
    hostile = PorData(
        end_b._rx_epoch, expected + 2**40, b"\x00" * 16, b"evil", 64
    )
    end_b._on_data(hostile)
    assert end_b.out_of_window_dropped == 1
    assert expected + 2**40 not in end_b._reorder

    # Just inside the horizon is still buffered (legitimate reordering).
    ahead = PorData(
        end_b._rx_epoch, expected + window, b"\x00" * 16, b"early", 64
    )
    end_b._on_data(ahead)
    assert end_b.out_of_window_dropped == 1
    assert expected + window in end_b._reorder
