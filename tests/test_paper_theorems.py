"""The paper's stated theorems (Section V-C), checked as experiments.

These are not proofs — the formal proofs live in Obenshain's thesis [35]
— but each theorem's *statement* is checkable on concrete executions,
including adversarial ones, and a reproduction should check them.
"""

import pytest

from repro.byzantine.attacks import SaturationFlow
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import clique, ring
from repro.topology.graph import Topology

LINK_BPS = 1e6
WIRE = 882 + 64 + 256 + 48  # payload + header + signature + PoR framing


def paced(**kwargs):
    defaults = dict(link_bandwidth_bps=LINK_BPS)
    defaults.update(kwargs)
    return OverlayConfig(**defaults)


class TestPriorityFloodingTimelySafe:
    """Theorem — Priority Flooding Timely-Safe.

    "If the network has no highest-priority message from a correct source
    S, then if S introduces a single highest-priority message m to a
    correct destination D, D will receive m within some time t.  t is no
    greater than the minimum message transmission time along a correct
    path between S and D, including the time it takes for at most n-1
    messages to be sent at each correct node along that path."
    """

    def test_bound_holds_under_saturation(self):
        net = OverlayNetwork.build(ring(5), paced(), seed=61)
        n = 5
        # Saturate the network with 4 other sources at capacity.
        for source, dest in [(2, 4), (3, 5), (4, 1), (5, 2)]:
            SaturationFlow(net, source, dest, rate_bps=LINK_BPS,
                           size_bytes=882, priority=10).start()
        net.run(5.0)  # reach steady contention
        message = net.node(1).send_priority(3, size_bytes=882, priority=10)
        net.run(10.0)
        recorder = net.flow_latency(1, 3)
        assert recorder.count == 1
        latency = recorder.latencies()[0]
        # Bound: per hop, propagation + up to (n-1) message transmissions
        # (the RR cycle of the other active sources) + our own; the
        # shortest correct 1->3 path has 2 hops.  Add the PoR in-flight
        # allowance (pacing keeps ~2 packets committed per link).
        per_message = WIRE * 8 / LINK_BPS
        hops = 2
        bound = hops * (0.010 + (n - 1 + 3) * per_message)
        assert latency <= bound

    def test_no_contention_latency_is_propagation_plus_transmission(self):
        net = OverlayNetwork.build(ring(5), paced(), seed=62)
        net.node(1).send_priority(3, size_bytes=882, priority=10)
        net.run(2.0)
        latency = net.flow_latency(1, 3).latencies()[0]
        per_message = WIRE * 8 / LINK_BPS
        assert latency == pytest.approx(2 * (0.010 + per_message), rel=0.2)


class TestPriorityFloodingGuaranteedThroughput:
    """Theorem — Priority Flooding Guaranteed Throughput.

    "If there exists a correct path from a correct source S to a correct
    destination D, and S sends only to D, and S is one of g correct
    sources actively sending, and there are f compromised sources
    actively sending, then the rate at which S can send to D is no less
    than 1/(f+g) times the minimum bandwidth over all edges in that
    correct path."
    """

    @pytest.mark.parametrize("f", [1, 3])
    def test_fair_share_floor(self, f):
        net = OverlayNetwork.build(clique(6), paced(), seed=63)
        # S = 1 (correct, g = 1), f compromised sources saturating.
        for attacker, dest in [(2, 5), (3, 6), (4, 2)][:f]:
            SaturationFlow(net, attacker, dest, rate_bps=2 * LINK_BPS,
                           size_bytes=882, priority=10).start()
        honest = SaturationFlow(net, 1, 6, rate_bps=2 * LINK_BPS,
                                size_bytes=882, priority=5)
        honest.start()
        net.run(20.0)
        goodput_bps = net.flow_goodput(1, 6).average_mbps(5.0, 20.0) * 1e6
        floor = (LINK_BPS * 882 / WIRE) / (f + 1)
        assert goodput_bps >= 0.9 * floor


class TestReliableFloodingSafety:
    """Theorem — Reliable Flooding Safety.

    "If a correct source node S accepts i messages destined to some
    correct destination node D, then the first i-b messages have all
    been reliably delivered in order at D, where b is the size of the
    buffer for one flow at a node."
    """

    @pytest.mark.parametrize("b", [4, 16])
    def test_accepted_minus_buffer_always_delivered(self, b):
        from repro.byzantine.behaviors import DroppingBehavior

        net = OverlayNetwork.build(clique(5), paced(reliable_buffer=b), seed=64)
        net.compromise(3, DroppingBehavior())  # adversity along the way
        received = []
        net.node(5).on_deliver = lambda m: received.append(m.seq)
        source = net.node(1)
        accepted = [0]

        def tick():
            while accepted[0] < 120 and source.send_reliable(5, size_bytes=400):
                accepted[0] += 1
                # Check the invariant at every acceptance point.
            if accepted[0] < 120:
                net.sim.schedule(0.05, tick)

        def check():
            i = accepted[0]
            if i > b:
                assert received[: i - b] == list(range(1, i - b + 1)), (
                    f"accepted {i}, buffer {b}: prefix not delivered"
                )
            if accepted[0] < 120 or len(received) < 120:
                net.sim.schedule(0.1, check)

        tick()
        check()
        net.run(60.0)
        assert received == list(range(1, 121))


class TestReliableFloodingGuaranteedThroughput:
    """Theorem — Reliable Flooding Guaranteed Throughput.

    The guaranteed floor is 1/((f+g)(n-1)) of the min path bandwidth —
    loose because in the worst case every message must visit all n nodes
    before the buffer frees.  Measured goodput sits far above it.
    """

    def test_floor_is_respected(self):
        net = OverlayNetwork.build(clique(5), paced(e2e_ack_timeout=0.1), seed=65)
        n, f, g = 5, 2, 1
        for attacker, dest in [(2, 4), (3, 5)]:
            SaturationFlow(net, attacker, dest, rate_bps=2 * LINK_BPS,
                           size_bytes=882, semantics=Semantics.RELIABLE).start()
        honest = SaturationFlow(net, 1, 4, rate_bps=2 * LINK_BPS,
                                size_bytes=882, semantics=Semantics.RELIABLE)
        honest.start()
        net.run(20.0)
        goodput_bps = net.flow_goodput(1, 4).average_mbps(5.0, 20.0) * 1e6
        floor = (LINK_BPS * 882 / WIRE) / ((f + g) * (n - 1))
        assert goodput_bps >= floor
