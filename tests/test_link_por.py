"""Unit tests for the Proof-of-Receipt link."""

import pytest

from repro.crypto.pki import Pki, PkiMode
from repro.errors import ConfigurationError, ProtocolError
from repro.link.por import PorConfig, connect_por_pair
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator


def make_link(seed=0, latency=0.010, loss=0.0, bandwidth=None, config=None,
              pki_mode=PkiMode.SIMULATED, handshake=False):
    sim = Simulator(seed=seed)
    pki = Pki(mode=pki_mode, seed=seed, rsa_bits=256)
    pki.register("a")
    pki.register("b")
    cfg = ChannelConfig(latency=latency, loss_rate=loss, bandwidth_bps=bandwidth)
    ab = Channel(sim, cfg, name="a->b")
    ba = Channel(sim, cfg, name="b->a")
    end_a, end_b = connect_por_pair(
        sim, "a", "b", ab, ba, pki, config=config, handshake=handshake
    )
    delivered_a, delivered_b = [], []
    end_a.on_deliver = lambda p, s: delivered_a.append(p)
    end_b.on_deliver = lambda p, s: delivered_b.append(p)
    return sim, end_a, end_b, delivered_a, delivered_b


class TestReliableInOrderDelivery:
    def test_simple_delivery(self):
        sim, a, b, _, delivered_b = make_link()
        a.send("hello", 100)
        sim.run(until=1.0)
        assert delivered_b == ["hello"]

    def test_in_order_burst(self):
        sim, a, b, _, delivered_b = make_link()
        for i in range(50):
            a.send(i, 100)
        sim.run(until=2.0)
        assert delivered_b == list(range(50))

    def test_bidirectional(self):
        sim, a, b, delivered_a, delivered_b = make_link()
        a.send("to-b", 100)
        b.send("to-a", 100)
        sim.run(until=1.0)
        assert delivered_b == ["to-b"]
        assert delivered_a == ["to-a"]

    def test_delivery_under_heavy_loss(self):
        sim, a, b, _, delivered_b = make_link(
            loss=0.4, config=PorConfig(initial_rto=0.1, min_rto=0.05)
        )
        for i in range(100):
            a.send(i, 100)
        sim.run(until=60.0)
        assert delivered_b == list(range(100))
        assert a.data_retransmitted > 0

    def test_no_duplicate_delivery_under_loss(self):
        """Lost ACKs cause retransmissions; receiver must dedup."""
        sim, a, b, _, delivered_b = make_link(
            loss=0.3, config=PorConfig(initial_rto=0.08, min_rto=0.04)
        )
        for i in range(60):
            a.send(i, 100)
        sim.run(until=60.0)
        assert delivered_b == list(range(60))
        assert b.duplicates_dropped >= 0  # counted, never delivered twice

    def test_window_not_exceeded(self):
        config = PorConfig(window=4)
        sim, a, b, _, _ = make_link(config=config)
        for i in range(4):
            a.send(i, 100)
        assert a.in_flight == 4
        assert not a.can_accept()
        with pytest.raises(ProtocolError):
            a.send(99, 100)

    def test_window_reopens_after_ack(self):
        config = PorConfig(window=2)
        sim, a, b, _, delivered_b = make_link(config=config)
        ready = []
        a.on_ready = lambda: ready.append(sim.now)
        a.send(0, 100)
        a.send(1, 100)
        sim.run(until=1.0)
        assert len(ready) >= 1
        assert a.can_accept()
        a.send(2, 100)
        sim.run(until=2.0)
        assert delivered_b == [0, 1, 2]


class TestPacing:
    def test_can_accept_respects_channel_backlog(self):
        # 100-byte payload + 48 overhead at 8 kbps = 148 ms serialization.
        config = PorConfig(pacing_slack=0.01)
        sim, a, b, _, _ = make_link(bandwidth=8000.0, config=config)
        a.send(0, 100)
        assert not a.can_accept()
        assert a.time_until_ready() == pytest.approx(0.148 - 0.01, abs=1e-6)

    def test_time_until_ready_none_when_window_full(self):
        config = PorConfig(window=1)
        sim, a, b, _, _ = make_link(config=config)
        a.send(0, 100)
        assert a.time_until_ready() is None

    def test_throughput_approaches_link_capacity(self):
        """A saturating sender should achieve most of the channel rate."""
        config = PorConfig(window=64, pacing_slack=0.002)
        sim, a, b, _, _ = make_link(bandwidth=1e6, latency=0.020, config=config)
        sent = [0]
        finished = []
        b.on_deliver = lambda p, s: finished.append(sim.now)

        def pump():
            while a.can_accept() and sent[0] < 300:
                a.send(sent[0], 1202)  # 1250 bytes on the wire
                sent[0] += 1
            if sent[0] < 300:
                delay = a.time_until_ready()
                if delay is not None:
                    sim.schedule(max(delay, 1e-4), pump)

        a.on_ready = pump
        pump()
        sim.run(until=10.0)
        assert len(finished) == 300
        # 300 * 1250 B * 8 = 3.0 Mbit of wire time at 1 Mbps is 3.0 s;
        # ACK overhead and pacing should cost no more than ~30% extra.
        assert finished[-1] < 4.0


class TestProofOfReceipt:
    def test_optimistic_ack_rejected(self):
        """A fabricated ACK for unreceived data must not advance the window."""
        from repro.link.por import PorAck

        config = PorConfig(window=8)
        sim, a, b, _, _ = make_link(latency=1.0, config=config)  # slow link
        for i in range(8):
            a.send(i, 100)
        # Attacker (the receiver) optimistically acks everything without
        # having the nonces.
        bogus = PorAck(a.epoch, 7, b"\x00" * 16)
        a._on_packet(bogus)
        assert a.in_flight == 8
        assert a.bogus_acks_rejected == 1

    def test_honest_acks_free_window(self):
        sim, a, b, _, _ = make_link()
        for i in range(8):
            a.send(i, 100)
        sim.run(until=1.0)
        assert a.in_flight == 0
        assert a.bogus_acks_rejected == 0


class TestIntegrity:
    def test_corrupted_data_dropped(self):
        sim, a, b, _, delivered_b = make_link()
        # Tamper with every packet on the wire.
        original = a.out_channel.send

        def tampering_send(pkt, size):
            if hasattr(pkt, "corrupted"):
                pkt.corrupted = True
            original(pkt, size)

        a.out_channel.send = tampering_send
        a.send("evil", 100)
        sim.run(until=0.5)
        assert delivered_b == []
        assert b.macs_rejected > 0

    def test_corruption_ignored_when_macs_disabled(self):
        config = PorConfig(check_macs=False)
        sim, a, b, _, delivered_b = make_link(config=config)
        original = a.out_channel.send

        def tampering_send(pkt, size):
            if hasattr(pkt, "corrupted"):
                pkt.corrupted = True
            original(pkt, size)

        a.out_channel.send = tampering_send
        a.send("evil", 100)
        sim.run(until=0.5)
        assert delivered_b == ["evil"]  # no MAC check: tampering undetected


class TestRealCryptoHandshake:
    def test_handshake_establishes_and_delivers(self):
        sim, a, b, _, delivered_b = make_link(pki_mode=PkiMode.REAL, handshake=True)
        assert not a.established
        sim.run(until=1.0)
        assert a.established and b.established
        a.send(b"secret-payload", 100)
        sim.run(until=2.0)
        assert delivered_b == [b"secret-payload"]

    def test_send_before_establishment_rejected(self):
        sim, a, b, _, _ = make_link(pki_mode=PkiMode.REAL, handshake=True)
        with pytest.raises(ProtocolError):
            a.send(b"x", 10)

    def test_real_hmac_rejects_bit_flip(self):
        sim, a, b, _, delivered_b = make_link(pki_mode=PkiMode.REAL, handshake=True)
        sim.run(until=1.0)
        original = a.out_channel.send

        def bitflip_send(pkt, size):
            if hasattr(pkt, "mac") and isinstance(pkt.mac, bytes):
                pkt.mac = bytes([pkt.mac[0] ^ 1]) + pkt.mac[1:]
            original(pkt, size)

        a.out_channel.send = bitflip_send
        a.send(b"x", 10)
        sim.run(until=2.0)
        assert delivered_b == []
        assert b.macs_rejected > 0


class TestCrashRecovery:
    def test_epoch_reset_resynchronizes(self):
        sim, a, b, _, delivered_b = make_link()
        a.send("before", 100)
        sim.run(until=1.0)
        assert delivered_b == ["before"]
        a.reset()  # a crashes and restarts
        assert a.epoch == 1
        a.send("after", 100)
        sim.run(until=2.0)
        assert delivered_b == ["before", "after"]

    def test_stale_epoch_packets_ignored(self):
        from repro.link.por import PorData

        sim, a, b, _, delivered_b = make_link()
        a.send("current", 100)
        sim.run(until=1.0)
        a.reset()
        a.send("fresh", 100)
        sim.run(until=2.0)
        # Replay a packet from epoch 0.
        stale = PorData(0, 5, b"\x00" * 8, "stale", 100)
        b._on_packet(stale)
        assert "stale" not in delivered_b


class TestConfigValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            PorConfig(window=0)

    def test_bad_rto_ordering(self):
        with pytest.raises(ConfigurationError):
            PorConfig(min_rto=0.5, initial_rto=0.1)

    def test_negative_slack(self):
        with pytest.raises(ConfigurationError):
            PorConfig(pacing_slack=-1.0)


class TestAckCoalescing:
    def test_in_order_burst_halves_ack_traffic(self):
        """Delayed ACKs (factor 2): a long in-order stream generates about
        one ACK per two data packets, not one per packet."""
        config = PorConfig(window=64, ack_coalesce=2, ack_delay=0.002)
        sim, a, b, _, delivered_b = make_link(config=config)
        for i in range(40):
            a.send(i, 100)
        sim.run(until=5.0)
        assert delivered_b == list(range(40))
        assert a.in_flight == 0  # every packet acknowledged
        assert b.acks_sent <= 40 // 2 + 2  # coalesced, plus boundary flushes

    def test_gap_flushes_ack_immediately(self):
        """A sequence gap must produce an immediate NACK-bearing ACK —
        fast retransmit cannot wait out the delayed-ACK timer."""
        from repro.link.por import PorData

        config = PorConfig(window=64, ack_coalesce=8, ack_delay=0.1)
        sim, a, b, _, _ = make_link(config=config)
        a.send(0, 100)
        sim.run(until=0.1)
        acks_before = b.acks_sent
        # Deliver seq 2 directly, skipping seq 1: out-of-order arrival.
        nonce = a._nonce_rng.getrandbits(64).to_bytes(8, "big")
        b._on_packet(PorData(0, 2, nonce, "skip", 100))
        assert b.acks_sent == acks_before + 1  # flushed now, not deferred

    def test_delayed_ack_timer_bounds_deferral(self):
        """A lone packet (no follow-up to coalesce with) is still ACKed
        within ack_delay, so the sender's RTT sample barely inflates."""
        config = PorConfig(window=8, ack_coalesce=4, ack_delay=0.005)
        sim, a, b, _, delivered_b = make_link(latency=0.0, config=config)
        a.send("only", 100)
        sim.run(until=0.001)
        assert delivered_b == ["only"]
        assert a.in_flight == 1  # ACK still held back
        sim.run(until=0.050)
        assert a.in_flight == 0  # flush timer fired well within ack_delay+slack
        assert b.acks_sent == 1

    def test_ack_delay_must_stay_below_rto(self):
        with pytest.raises(ConfigurationError):
            PorConfig(initial_rto=0.2, ack_delay=0.2)

    def test_coalescing_disabled_acks_every_packet(self):
        config = PorConfig(window=64, ack_coalesce=1)
        sim, a, b, _, delivered_b = make_link(config=config)
        for i in range(10):
            a.send(i, 100)
        sim.run(until=2.0)
        assert delivered_b == list(range(10))
        assert b.acks_sent >= 10
