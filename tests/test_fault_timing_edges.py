"""Fault timing edge cases: failures that land mid-protocol.

These tests pin the hairiest interleavings the chaos engine can produce:
a link dying in the middle of the PoR Diffie-Hellman handshake, a node
crashing while end-to-end ACKs for its reliable flow are still in flight,
and a link flapping during an active retransmission storm.
"""

from repro.crypto.pki import Pki, PkiMode
from repro.faults.invariants import InvariantMonitor
from repro.link.por import PorConfig, connect_por_pair
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator
from repro.topology.generators import chordal_ring, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


def make_handshake_link(seed=0, latency=0.010, loss=0.0):
    sim = Simulator(seed=seed)
    pki = Pki(mode=PkiMode.REAL, seed=seed, rsa_bits=256)
    pki.register("a")
    pki.register("b")
    cfg = ChannelConfig(latency=latency, loss_rate=loss)
    ab = Channel(sim, cfg, name="a->b")
    ba = Channel(sim, cfg, name="b->a")
    end_a, end_b = connect_por_pair(
        sim, "a", "b", ab, ba, pki,
        config=PorConfig(initial_rto=0.1, min_rto=0.05), handshake=True,
    )
    delivered_b = []
    end_b.on_deliver = lambda p, s: delivered_b.append(p)
    return sim, end_a, end_b, ab, ba, delivered_b


class TestLinkFailureMidHandshake:
    def test_offer_lost_link_establishes_after_restore(self):
        # The channel dies before the first offer arrives; the initiator's
        # capped retry loop must complete the handshake once it heals.
        sim, a, b, ab, ba, delivered_b = make_handshake_link()
        ab.take_down()
        sim.run(until=1.0)
        assert not a.established and not b.established
        ab.restore()
        sim.run(until=5.0)
        assert a.established and b.established
        a.send("post-heal", 100)
        sim.run(until=6.0)
        assert delivered_b == ["post-heal"]

    def test_answer_lost_link_establishes_after_restore(self):
        # The reverse direction dies mid-exchange: the responder's half is
        # lost, so the initiator believes the handshake is still pending
        # while the responder considers it done.  The initiator's re-offer
        # and the responder's re-answer must converge.
        sim, a, b, ab, ba, delivered_b = make_handshake_link()
        ba.take_down()
        sim.run(until=1.0)
        assert not a.established
        ba.restore()
        sim.run(until=5.0)
        assert a.established and b.established
        a.send("converged", 100)
        sim.run(until=6.0)
        assert delivered_b == ["converged"]

    def test_handshake_attempts_are_capped(self):
        sim, a, b, ab, ba, _ = make_handshake_link()
        ab.take_down()
        sim.run(until=600.0)
        assert not a.established
        # Retries stopped (bounded attempts), not an infinite offer storm.
        assert ab.packets_sent <= a.MAX_HANDSHAKE_ATTEMPTS


class TestCrashWithInFlightE2eAcks:
    def test_dest_crash_with_acks_in_flight(self):
        net = OverlayNetwork.build(ring(5), FAST, seed=1)
        monitor = InvariantMonitor(net)
        monitor.arm()
        client = net.client(1)
        sent = 0
        while sent < 10 and client.send_reliable(3, size_bytes=400):
            sent += 1
        # Long enough for deliveries and for E2E ACKs to be generated
        # (e2e_ack_timeout=0.5) and still be crossing the network.
        net.run(0.7)
        net.crash(3)
        net.run(2.0)
        net.recover(3)
        net.run(5.0)
        # New incarnation: the flow restarts cleanly and stays in order.
        more = 0
        while more < 5 and client.send_reliable(3, size_bytes=400):
            more += 1
        net.run(10.0)
        assert monitor.ok, monitor.report()

    def test_source_crash_with_acks_in_flight(self):
        net = OverlayNetwork.build(ring(5), FAST, seed=2)
        monitor = InvariantMonitor(net)
        monitor.arm()
        client = net.client(1)
        sent = 0
        while sent < 10 and client.send_reliable(3, size_bytes=400):
            sent += 1
        net.run(0.7)
        net.crash(1)  # E2E ACKs toward node 1 are now undeliverable
        net.run(2.0)
        net.recover(1)
        net.run(5.0)
        delivered_before = net.delivered_count(1, 3)
        more = 0
        while more < 5 and client.send_reliable(3, size_bytes=400):
            more += 1
        net.run(10.0)
        assert net.delivered_count(1, 3) >= delivered_before
        assert monitor.ok, monitor.report()


class TestFlapDuringRetransmission:
    def test_por_flap_during_retransmission(self):
        # A lossy link is mid-retransmission when it flaps hard; once
        # restored, the PoR window must still deliver everything in order.
        sim = Simulator(seed=3)
        pki = Pki(mode=PkiMode.SIMULATED, seed=3, rsa_bits=256)
        pki.register("a")
        pki.register("b")
        cfg = ChannelConfig(latency=0.010, loss_rate=0.3)
        ab = Channel(sim, cfg, name="a->b")
        ba = Channel(sim, cfg, name="b->a")
        a, b = connect_por_pair(
            sim, "a", "b", ab, ba, pki,
            config=PorConfig(initial_rto=0.1, min_rto=0.05),
        )
        delivered = []
        b.on_deliver = lambda p, s: delivered.append(p)
        for i in range(60):
            a.send(i, 100)
        sim.run(until=0.5)
        assert a.data_retransmitted > 0 or ab.packets_lost > 0
        ab.take_down()
        ba.take_down()
        sim.run(until=3.0)
        ab.restore()
        ba.restore()
        sim.run(until=60.0)
        assert delivered == list(range(60))

    def test_overlay_flap_during_reliable_retransmission(self):
        net = OverlayNetwork.build(chordal_ring(6), FAST, seed=4)
        monitor = InvariantMonitor(net)
        monitor.arm()
        client = net.client(1)
        sent = 0
        while sent < 20 and client.send_reliable(4, size_bytes=400):
            sent += 1
        net.run(0.05)  # messages in flight on the first hop
        net.fail_link(1, 2)
        net.run(3.0)
        net.restore_link(1, 2)
        net.run(30.0)
        assert net.delivered_count(1, 4) == sent
        assert monitor.ok, monitor.report()
