"""Section V-D, "Protocol selection in unified infrastructure".

"The implementation allows the different dissemination methods (K-Paths
and Constrained Flooding) and the messaging protocols (Priority and
Reliable Messaging) to coexist in a single infrastructure.  Applications
can select a combination of dissemination method and messaging protocol
on a message-by-message basis.  Currently, there are four combinations:
Priority K-Paths, Priority Flooding, Reliable K-Paths, and Reliable
Flooding.  Note that all combinations can be in use simultaneously."
"""

import pytest

from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import global_cloud
from repro.workloads.traffic import CbrTraffic

PACED = OverlayConfig(link_bandwidth_bps=1e6)

COMBINATIONS = [
    ("priority-flooding", Semantics.PRIORITY, DisseminationMethod.flooding(), (1, 9)),
    ("priority-k2", Semantics.PRIORITY, DisseminationMethod.k_paths(2), (4, 12)),
    ("reliable-flooding", Semantics.RELIABLE, DisseminationMethod.flooding(), (6, 10)),
    ("reliable-k2", Semantics.RELIABLE, DisseminationMethod.k_paths(2), (8, 11)),
]


class TestFourCombinationsSimultaneously:
    def test_all_combinations_coexist(self):
        net = OverlayNetwork.build(global_cloud.topology(), PACED, seed=5)
        flows = []
        for name, semantics, method, (src, dst) in COMBINATIONS:
            flow = CbrTraffic(
                net, src, dst, rate_bps=1e5, size_bytes=882,
                semantics=semantics, method=method,
            )
            flow.start()
            flows.append((name, src, dst, flow))
        net.run(15.0)
        for name, src, dst, flow in flows:
            goodput = net.flow_goodput(src, dst).average_mbps(3.0, 15.0)
            # Every combination carries its full (modest) offered load.
            assert goodput > 0.08, f"{name}: {goodput}"

    def test_message_by_message_selection_on_one_flow(self):
        """One source alternates all four combinations toward one dest."""
        net = OverlayNetwork.build(global_cloud.topology(), PACED, seed=6)
        received = []
        net.node(9).on_deliver = lambda m: received.append(
            (m.semantics.value, m.flooding)
        )
        node = net.node(7)
        for i in range(8):
            _, semantics, method, _ = COMBINATIONS[i % 4]
            if semantics is Semantics.PRIORITY:
                node.send_priority(9, method=method)
            else:
                assert node.send_reliable(9, method=method)
        net.run(10.0)
        assert len(received) == 8
        assert {("priority", True), ("priority", False),
                ("reliable", True), ("reliable", False)} <= set(received)

    def test_per_semantics_isolation(self):
        """A saturating priority spammer does not break a reliable flow
        sharing the same links (they split link bandwidth fairly)."""
        net = OverlayNetwork.build(global_cloud.topology(), PACED, seed=7)
        spam = CbrTraffic(net, 1, 10, rate_bps=2e6, size_bytes=882,
                          priority=10, semantics=Semantics.PRIORITY)
        spam.start()
        received = []
        net.node(10).on_deliver = lambda m: received.append(m) if (
            m.semantics is Semantics.RELIABLE) else None
        sent = [0]

        def tick():
            while sent[0] < 50 and net.node(1).send_reliable(10, size_bytes=600):
                sent[0] += 1
            if sent[0] < 50:
                net.sim.schedule(0.05, tick)

        tick()
        net.run(30.0)
        assert sent[0] == 50
        assert len(received) == 50
        assert [m.seq for m in received] == list(range(1, 51))
