"""Tests for external client access (Figure 1's white boxes)."""

import pytest

from repro.byzantine.behaviors import DroppingBehavior
from repro.errors import ConfigurationError
from repro.messaging.message import Semantics
from repro.overlay.access import AccessPoint, ClientEnvelope
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import clique, ring

PACED = OverlayConfig(link_bandwidth_bps=1e6)


def build_with_clients():
    net = OverlayNetwork.build(ring(4), PACED)
    ap1 = AccessPoint(net, 1)
    ap3 = AccessPoint(net, 3)
    alice = ap1.attach("alice")
    bob = ap3.attach("bob")
    return net, ap1, ap3, alice, bob


class TestClientMessaging:
    def test_client_to_client_priority(self):
        net, _, _, alice, bob = build_with_clients()
        alice.send(3, data=b"hi bob", to_client="bob", size_bytes=500)
        net.run(2.0)
        assert len(bob.received) == 1
        _, envelope = bob.received[0]
        assert envelope.from_client == "alice"
        assert envelope.data == b"hi bob"

    def test_client_to_client_reliable_in_order(self):
        net, _, _, alice, bob = build_with_clients()
        for i in range(20):
            alice.send(3, data=i, to_client="bob",
                       semantics=Semantics.RELIABLE, size_bytes=400)
        net.run(10.0)
        assert [env.data for _, env in bob.received] == list(range(20))

    def test_reliable_backpressure_retries(self):
        net = OverlayNetwork.build(
            ring(4), OverlayConfig(link_bandwidth_bps=1e5, reliable_buffer=4)
        )
        ap1, ap3 = AccessPoint(net, 1), AccessPoint(net, 3)
        alice, bob = ap1.attach("alice"), ap3.attach("bob")
        for i in range(12):
            alice.send(3, data=i, to_client="bob",
                       semantics=Semantics.RELIABLE, size_bytes=400)
        net.run(30.0)
        assert [env.data for _, env in bob.received] == list(range(12))

    def test_access_latency_is_added(self):
        net, _, _, alice, bob = build_with_clients()
        alice.send(3, data="x", to_client="bob", size_bytes=100)
        net.run(2.0)
        delivered_at, _ = bob.received[0]
        # Two access hops (2 ms each) plus two overlay hops (10 ms each).
        assert delivered_at >= 0.024

    def test_bidirectional(self):
        net, _, _, alice, bob = build_with_clients()
        alice.send(3, data="ping", to_client="bob", size_bytes=100)
        net.run(1.0)
        bob.send(1, data="pong", to_client="alice", size_bytes=100)
        net.run(1.0)
        assert alice.received[0][1].data == "pong"

    def test_callback(self):
        net, _, _, alice, bob = build_with_clients()
        seen = []
        bob.on_receive = lambda env: seen.append(env.data)
        alice.send(3, data=1, to_client="bob")
        net.run(1.0)
        assert seen == [1]


class TestAttachment:
    def test_duplicate_attach_rejected(self):
        net = OverlayNetwork.build(ring(4), PACED)
        ap = AccessPoint(net, 1)
        ap.attach("alice")
        with pytest.raises(ConfigurationError):
            ap.attach("alice")

    def test_unknown_recipient_counted(self):
        net, _, ap3, alice, _ = build_with_clients()
        alice.send(3, data="?", to_client="ghost")
        net.run(2.0)
        assert ap3.undeliverable == 1

    def test_detach_stops_delivery(self):
        net, _, ap3, alice, bob = build_with_clients()
        bob.detach()
        alice.send(3, data="late", to_client="bob")
        net.run(2.0)
        assert bob.received == []
        assert ap3.undeliverable == 1

    def test_multiple_clients_per_node(self):
        net = OverlayNetwork.build(ring(4), PACED)
        ap1, ap3 = AccessPoint(net, 1), AccessPoint(net, 3)
        alice = ap1.attach("alice")
        carol = ap3.attach("carol")
        dave = ap3.attach("dave")
        alice.send(3, data="c", to_client="carol")
        alice.send(3, data="d", to_client="dave")
        net.run(2.0)
        assert carol.received[0][1].data == "c"
        assert dave.received[0][1].data == "d"

    def test_node_app_delivery_still_works(self):
        """The access point chains, not replaces, the node's on_deliver."""
        net = OverlayNetwork.build(ring(4), PACED)
        app = []
        net.node(3).on_deliver = lambda m: app.append(m)
        ap3 = AccessPoint(net, 3)
        ap3.attach("bob")
        net.client(1).send_priority(3, payload="plain")
        net.run(2.0)
        assert len(app) == 1


class TestClientsUnderAttack:
    def test_client_traffic_survives_byzantine_forwarder(self):
        net = OverlayNetwork.build(clique(4), PACED)
        ap1, ap4 = AccessPoint(net, 1), AccessPoint(net, 4)
        alice, bob = ap1.attach("alice"), ap4.attach("bob")
        net.compromise(2, DroppingBehavior())
        for i in range(5):
            alice.send(4, data=i, to_client="bob")
        net.run(3.0)
        assert [env.data for _, env in bob.received] == [0, 1, 2, 3, 4]

    def test_crashed_attachment_node_drops_submissions(self):
        net, _, _, alice, bob = build_with_clients()
        net.crash(1)
        alice.send(3, data="lost", to_client="bob")
        net.run(2.0)
        assert bob.received == []
