"""Long-run soak test: the shadow deployment in miniature.

The paper's deployment "ran for several months as a complete shadow
monitoring system".  This test compresses that into 10 simulated minutes
of continuous operation on the 12-node cloud with everything happening
at once:

* the monitoring workload reporting to a sink the whole time,
* proactive recovery cycling every node through take-down/restore,
* a Byzantine node appearing mid-run (and being cleaned by recovery),
* periodic underlay link failures and repairs,
* a reliable control flow running end to end.

Invariants checked throughout and at the end: the monitoring view stays
fresh, the reliable flow is exactly-once in-order, no unhandled
exceptions, and per-node soft state (dedup metadata, flow buffers)
remains bounded.
"""

import pytest

from repro.byzantine.behaviors import DroppingBehavior
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.resilience.recovery import ProactiveRecovery
from repro.workloads.experiment import SCALED_LINK_BPS, Deployment
from repro.workloads.monitoring import MonitoringWorkload
from repro.workloads.traffic import ReliableBacklogTraffic

SINK = 3
MINUTES = 10


@pytest.mark.slow
def test_soak_ten_simulated_minutes():
    deployment = Deployment(
        config=OverlayConfig(
            link_bandwidth_bps=SCALED_LINK_BPS,
            max_message_lifetime=30.0,
        ),
        seed=77,
    )
    net = deployment.network
    sim = deployment.sim

    monitoring = MonitoringWorkload(
        net, sinks=[SINK], method=DisseminationMethod.k_paths(2)
    )
    monitoring.start()

    recovery = ProactiveRecovery(net, period=120.0, downtime=2.0)
    recovery.start()

    control = ReliableBacklogTraffic(net, 4, 9, count=2000, size_bytes=600)
    control.start()
    received = []
    chained = net.node(9).on_deliver
    def on_deliver(m):
        if chained:
            chained(m)
        if m.semantics.value == "reliable":
            received.append(m.seq)
    net.node(9).on_deliver = on_deliver

    # Mid-run events.
    sim.schedule_at(120.0, net.compromise, 10, DroppingBehavior())
    sim.schedule_at(180.0, net.fail_link, 1, 2)
    sim.schedule_at(240.0, net.restore_link, 1, 2)
    sim.schedule_at(300.0, monitoring.set_method, DisseminationMethod.flooding())

    freshness_violations = []

    def check_freshness():
        # Skip windows where a recovery just took a reporter down.
        staleness = monitoring.view_staleness(SINK, at_time=sim.now)
        fresh = sum(1 for s in staleness if s < 10.0)
        if fresh < 9:  # 11 reporters; allow recovery + compromised node
            freshness_violations.append((sim.now, fresh))
        if sim.now < MINUTES * 60.0 - 1:
            sim.schedule(15.0, check_freshness)

    sim.schedule(30.0, check_freshness)
    deployment.run(MINUTES * 60.0)

    # --- Liveness: the view stayed fresh throughout.
    assert not freshness_violations, freshness_violations[:5]

    # --- Reliability: the control flow is exactly-once in order.
    assert control.done
    assert received == list(range(1, 2001))

    # --- Every node cycled through proactive recovery at least twice.
    assert recovery.recoveries_completed >= 2 * len(net.nodes)
    assert recovery.compromises_cleaned >= 1

    # --- Soft state stayed bounded (metadata expires; buffers bounded).
    for node in net.nodes.values():
        assert len(node.metadata) < 50_000
        for state in node.reliable.flows.values():
            assert state.buffer_used() <= net.config.reliable_buffer

    # --- Monitoring really ran the whole time.
    assert monitoring.messages_sent > MINUTES * 60 / 3 * 10 * 0.5
