"""Unit tests for the client tier and its admission stage.

The property tests in ``test_property_admission.py`` pin the
controller's invariants over arbitrary operation sequences; here we pin
the concrete behaviors — bucket arithmetic, the hysteresis state
machine, park/release/expire flows, the node wiring, and the client
workload generators — on hand-built scenarios.
"""

from __future__ import annotations

import pytest

from repro.clients.generators import (
    ClientTier,
    ClientWorkloadConfig,
    ScriptedBurst,
    ScriptedOverload,
)
from repro.errors import ConfigurationError
from repro.messaging.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionOutcome,
    AdmissionState,
)
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators


class StubClock:
    """A bare ``.now`` — the controller needs nothing else."""

    def __init__(self) -> None:
        self.now = 0.0


def make_controller(load=0.0, **overrides):
    clock = StubClock()
    state = {"load": load}
    config = AdmissionConfig(**overrides)
    controller = AdmissionController(
        config, clock, load_fn=lambda: state["load"]
    )
    return controller, clock, state


def offer(controller, source="s", priority=5):
    sent = []
    outcome = controller.offer(source, priority, lambda: sent.append(1))
    return outcome, sent


# ----------------------------------------------------------------------
# Token bucket + allowance
# ----------------------------------------------------------------------
def test_burst_admitted_then_out_of_allowance():
    controller, clock, _ = make_controller(burst_tokens=3.0, park_capacity=0)
    outcomes = [offer(controller)[0] for _ in range(5)]
    assert outcomes[:3] == [AdmissionOutcome.ADMITTED] * 3
    assert outcomes[3:] == [AdmissionOutcome.REJECTED] * 2
    # Tokens refill with time at the allowance rate.
    clock.now += 1.0
    assert offer(controller)[0] is AdmissionOutcome.ADMITTED


def test_admitted_offer_invokes_send_rejected_does_not():
    controller, _, _ = make_controller(burst_tokens=1.0, park_capacity=0)
    outcome, sent = offer(controller)
    assert outcome is AdmissionOutcome.ADMITTED and sent == [1]
    outcome, sent = offer(controller)
    assert outcome is AdmissionOutcome.REJECTED and sent == []


def test_allowance_rate_clamps_to_floor_bounds():
    controller, clock, _ = make_controller(
        capacity_rate=100.0, floor_min=5.0, floor_max=20.0, surge_max=1.0
    )
    # One source: fair share 100/s clamps to floor_max.
    offer(controller, source="a")
    assert controller.allowance_rate() == pytest.approx(20.0)
    # Fifty sources: fair share 2/s clamps up to floor_min.
    for index in range(50):
        offer(controller, source=f"s{index}")
    assert controller.allowance_rate() == pytest.approx(5.0)


def test_surge_multiplier_decays_across_park_band():
    controller, _, _ = make_controller(
        surge_max=4.0, park_low=0.2, park_high=0.6
    )
    assert controller.surge_multiplier(0.0) == pytest.approx(4.0)
    assert controller.surge_multiplier(0.2) == pytest.approx(4.0)
    assert controller.surge_multiplier(0.4) == pytest.approx(2.5)
    assert controller.surge_multiplier(0.6) == pytest.approx(1.0)
    assert controller.surge_multiplier(1.0) == pytest.approx(1.0)


def test_idle_sources_are_pruned():
    controller, clock, _ = make_controller(source_idle_timeout=5.0)
    offer(controller, source="a")
    offer(controller, source="b")
    assert controller.active_sources == 2
    clock.now += 3.0
    offer(controller, source="b")
    clock.now += 3.0  # "a" last offered 6 s ago, "b" 3 s ago
    controller.tick()
    assert controller.active_sources == 1
    assert controller.source_tokens("a") is None
    assert controller.source_tokens("b") is not None


# ----------------------------------------------------------------------
# Park / release / expire
# ----------------------------------------------------------------------
def test_out_of_allowance_offer_parks_and_releases_on_drain():
    controller, clock, state = make_controller(burst_tokens=1.0)
    offer(controller)
    outcome, sent = offer(controller)
    assert outcome is AdmissionOutcome.PARKED and sent == []
    assert controller.parked_live == 1
    # Load stays below park_low → next tick drains the park buffer.
    clock.now += 0.05
    controller.tick()
    assert controller.parked_live == 0
    assert controller.released == 1


def test_release_order_is_priority_then_fifo():
    controller, clock, _ = make_controller(burst_tokens=1.0, release_batch=10)
    released = []
    controller.offer("s", 5, lambda: released.append("admitted"))
    for tag, priority in (("low-1", 2), ("high-1", 8), ("low-2", 2), ("high-2", 8)):
        controller.offer("s", priority, lambda tag=tag: released.append(tag))
    clock.now += 0.05
    controller.tick()
    assert released == ["admitted", "high-1", "high-2", "low-1", "low-2"]


def test_parked_entries_expire_after_timeout():
    controller, clock, state = make_controller(
        burst_tokens=1.0, park_timeout=1.0
    )
    state["load"] = 0.55  # inside the park band: no drain, no reject
    offer(controller)
    assert offer(controller)[0] is AdmissionOutcome.PARKED
    clock.now += 1.5
    controller.tick()
    assert controller.parked_live == 0
    assert controller.expired == 1
    assert controller.released == 0


def test_replace_by_priority_evicts_only_strictly_lower():
    controller, clock, state = make_controller(
        burst_tokens=1.0, park_capacity=2
    )
    state["load"] = 0.55
    controller.tick()
    offer(controller)  # consume the bucket
    assert offer(controller, priority=3)[0] is AdmissionOutcome.PARKED
    assert offer(controller, priority=5)[0] is AdmissionOutcome.PARKED
    # Equal priority: rejected, the buffer is full.
    assert offer(controller, priority=3)[0] is AdmissionOutcome.REJECTED
    # Strictly higher: evicts the oldest lowest (the priority-3 entry).
    assert offer(controller, priority=7)[0] is AdmissionOutcome.PARKED
    assert controller.evicted == 1
    assert sorted(p for p, _, _ in controller.parked_items()) == [5, 7]


def test_clear_accounts_parked_entries_and_resets():
    controller, clock, state = make_controller(burst_tokens=1.0)
    state["load"] = 0.55
    controller.tick()
    offer(controller)
    offer(controller)
    offer(controller)
    assert controller.parked_live == 2
    controller.clear()
    assert controller.parked_live == 0
    assert controller.cleared == 2
    assert controller.state is AdmissionState.OPEN
    offered, accounted = controller.balance()
    assert offered == accounted == 3


# ----------------------------------------------------------------------
# Watermark state machine
# ----------------------------------------------------------------------
def test_hysteresis_transitions():
    controller, clock, state = make_controller(
        park_low=0.25, park_high=0.50, reject_low=0.60, reject_high=0.85
    )
    assert controller.state is AdmissionState.OPEN
    state["load"] = 0.55
    controller.tick()
    assert controller.state is AdmissionState.PARK
    # Falling back inside the band does not reopen (hysteresis)...
    state["load"] = 0.30
    controller.tick()
    assert controller.state is AdmissionState.PARK
    # ...only falling through park_low does.
    state["load"] = 0.20
    controller.tick()
    assert controller.state is AdmissionState.OPEN
    # Straight to REJECT at reject_high, and REJECT exits into PARK,
    # never directly to OPEN.
    state["load"] = 0.90
    controller.tick()
    assert controller.state is AdmissionState.REJECT
    state["load"] = 0.55
    controller.tick()
    assert controller.state is AdmissionState.PARK


def test_reject_state_rejects_out_of_allowance_offers():
    controller, clock, state = make_controller(burst_tokens=1.0)
    state["load"] = 0.90
    controller.tick()
    offer(controller)  # within bucket: still admitted even under REJECT
    outcome, _ = offer(controller)
    assert outcome is AdmissionOutcome.REJECTED
    assert controller.parked_live == 0


def test_invalid_watermark_configs_raise():
    with pytest.raises(ConfigurationError):
        AdmissionConfig(park_low=0.5, park_high=0.4)
    with pytest.raises(ConfigurationError):
        AdmissionConfig(park_high=0.7, reject_low=0.6)
    with pytest.raises(ConfigurationError):
        AdmissionConfig(reject_low=0.9, reject_high=0.8)
    with pytest.raises(ConfigurationError):
        AdmissionConfig(reject_high=1.5)


# ----------------------------------------------------------------------
# Node wiring
# ----------------------------------------------------------------------
def build_net(admission=None, nodes=4, seed=0):
    return OverlayNetwork.build(
        generators.chordal_ring(nodes, chords=2, weight=0.001),
        OverlayConfig(admission=admission),
        seed=seed,
    )


def test_offer_priority_without_admission_is_passthrough():
    net = build_net(admission=None)
    node = net.node(1)
    assert node.admission is None
    outcome = node.offer_priority(3, priority=5)
    assert outcome is AdmissionOutcome.ADMITTED
    net.run(1.0)
    assert net.delivered_count(1, 3) == 1


def test_offer_priority_meters_per_client_source():
    net = build_net(admission=AdmissionConfig(burst_tokens=2.0, park_capacity=0))
    node = net.node(1)
    outcomes = [
        node.offer_priority(3, priority=5, client="1/c0").value for _ in range(4)
    ]
    assert outcomes == ["admitted", "admitted", "rejected", "rejected"]
    # A different client of the same node has its own untouched bucket.
    assert node.offer_priority(3, priority=5, client="1/c1").value == "admitted"
    net.run(1.0)
    assert net.delivered_count(1, 3) == 3


def test_crash_clears_admission_state():
    net = build_net(admission=AdmissionConfig(burst_tokens=1.0))
    node = net.node(1)
    node.offer_priority(3, priority=5, client="1/c0")
    node.offer_priority(3, priority=5, client="1/c0")  # parked
    assert node.admission.parked_live == 1
    node.crash()
    assert node.admission.parked_live == 0
    assert node.admission.cleared == 1
    offered, accounted = node.admission.balance()
    assert offered == accounted


# ----------------------------------------------------------------------
# Client workload generators
# ----------------------------------------------------------------------
def run_tier(seed=0, seconds=5.0, admission=None, **workload):
    net = build_net(admission=admission, seed=seed)
    nodes = sorted(net.nodes)
    tier = ClientTier(
        net, nodes, nodes,
        config=ClientWorkloadConfig(arrival_rate=30.0, **workload),
    )
    tier.start()
    net.run(seconds)
    tier.stop()
    net.run(1.0)
    return tier, net


def test_client_tier_offers_accounted_and_delivered():
    tier, net = run_tier()
    snapshot = tier.snapshot()
    assert snapshot["offered"] > 0
    accounted = (
        sum(snapshot["outcomes"].values())
        + snapshot["skipped_crashed"]
        + snapshot["unroutable"]
    )
    assert accounted == snapshot["offered"]
    # No admission stage: everything was admitted.
    assert snapshot["outcomes"]["admitted"] == snapshot["offered"]


def test_client_tier_is_deterministic_per_seed():
    first, _ = run_tier(seed=7)
    second, _ = run_tier(seed=7)
    third, _ = run_tier(seed=8)
    assert first.snapshot() == second.snapshot()
    assert first.snapshot() != third.snapshot()


def test_client_tier_respects_admission_stage():
    tier, net = run_tier(
        admission=AdmissionConfig(
            capacity_rate=20.0, floor_min=1.0, floor_max=2.0,
            burst_tokens=1.0, surge_max=1.0,
        ),
        burst_max=32,
    )
    snapshot = tier.snapshot()
    outcomes = snapshot["outcomes"]
    assert outcomes["admitted"] < snapshot["offered"]
    assert outcomes["parked"] + outcomes["rejected"] > 0
    # Conservation across the whole deployment's controllers.
    for node in net.nodes.values():
        offered, accounted = node.admission.balance()
        assert offered == accounted


def test_diurnal_rate_swings_between_bounds():
    net = build_net()
    tier = ClientTier(
        net, [1, 2], [1, 2],
        config=ClientWorkloadConfig(
            arrival_rate=40.0, diurnal_amplitude=0.5, diurnal_period=40.0
        ),
    )
    tier.start()
    assert tier.rate_at(0.0) == pytest.approx(40.0)
    assert tier.rate_at(10.0) == pytest.approx(60.0)  # peak at T/4
    assert tier.rate_at(30.0) == pytest.approx(20.0)  # trough at 3T/4
    assert tier.peak_rate == pytest.approx(60.0)


def test_scripted_overload_replays_plan_exactly():
    net = build_net(admission=AdmissionConfig(burst_tokens=4.0, park_capacity=0))
    plan = [
        ScriptedBurst(at=0.1, source=1, client="1/a", dest=3, count=6, priority=5),
        ScriptedBurst(at=0.2, source=2, client="2/a", dest=4, count=2, priority=7),
    ]
    driver = ScriptedOverload(net, plan)
    driver.arm(epoch=0.0)
    net.run(2.0)
    # First 4 offers of burst 0 fit the bucket; the rest are rejected.
    assert driver.outcomes == [
        (0, 0, "admitted"), (0, 1, "admitted"), (0, 2, "admitted"),
        (0, 3, "admitted"), (0, 4, "rejected"), (0, 5, "rejected"),
        (1, 0, "admitted"), (1, 1, "admitted"),
    ]
    assert driver.admitted_ids() == [
        (0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1),
    ]
