"""Unit and small-integration tests for the client session layer.

Covers the pieces of :mod:`repro.clients.session` individually — budget
bucket, circuit breaker, config validation — then the integrated state
machine on small simulated overlays: clean-network delivery, failover
around a crashed home ingress, typed admission NACK consumption (both
the local short-circuit and the flooded cross-overlay path), the
destination-side idempotency window, the degradation ladder, and the
sessions-off baseline semantics.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.clients.session import (
    ACK_PREFIX,
    REQUEST_PREFIX,
    CircuitBreaker,
    RetryBudget,
    ScriptedSessionRequest,
    SessionConfig,
    SessionTier,
    SessionWorkloadConfig,
)
from repro.errors import ConfigurationError
from repro.messaging.admission import AdmissionConfig, AdmissionState
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators


def build_net(nodes=6, admission=None, seed=0):
    topology = generators.chordal_ring(nodes, chords=2, weight=0.001)
    config = OverlayConfig(admission=admission)
    return OverlayNetwork.build(topology, config, seed=seed)


def build_tier(net, session=None, rate=10.0, **kwargs):
    nodes = sorted(net.nodes)
    workload = SessionWorkloadConfig(
        arrival_rate=rate, session=session or SessionConfig()
    )
    return SessionTier(net, nodes, list(nodes), workload=workload, **kwargs)


# ----------------------------------------------------------------------
# Mechanics: budget bucket, breaker, config validation
# ----------------------------------------------------------------------
def test_retry_budget_starts_empty_and_accrues_per_base_offer():
    budget = RetryBudget(0.25, 32.0)
    assert not budget.try_spend()  # cold start: no free retries
    for _ in range(3):
        budget.accrue()
    assert not budget.try_spend()  # 0.75 tokens: still short of one
    budget.accrue()
    assert budget.try_spend()  # 4 base offers -> exactly 1 retry
    assert not budget.try_spend()
    assert budget.spent == 1


def test_retry_budget_burst_caps_banked_tokens():
    budget = RetryBudget(1.0, 2.0)
    for _ in range(50):
        budget.accrue()
    spends = sum(1 for _ in range(50) if budget.try_spend())
    assert spends == 2  # burst depth, not 50


def test_circuit_breaker_full_cycle():
    breaker = CircuitBreaker(threshold=3, cooloff=1.0)
    assert breaker.state == "closed" and breaker.allow(0.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state == "closed"
    breaker.record_failure(0.2)
    assert breaker.state == "open" and breaker.opens == 1
    assert not breaker.allow(0.5)  # still cooling off
    assert breaker.allow(1.3)  # cooloff elapsed: one half-open trial
    assert breaker.state == "half_open"
    assert not breaker.allow(1.3)  # second trial denied while in flight
    breaker.record_failure(1.4)  # trial failed: straight back to open
    assert breaker.state == "open"
    assert breaker.allow(2.5)
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow(2.6)


@pytest.mark.parametrize("kwargs", [
    {"deadline": 0.0},
    {"attempt_timeout": 5.0, "deadline": 4.0},
    {"max_attempts": 0},
    {"retry_budget": -0.1},
    {"backoff_base": 0.0},
    {"backoff_base": 1.0, "backoff_cap": 0.5},
    {"priority": 3, "priority_floor": 5},
    {"ack_priority": 99},
    {"dedup_window": 1.0, "deadline": 4.0},
    {"breaker_threshold": 0},
    {"backups": -1},
])
def test_session_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        SessionConfig(**kwargs)


# ----------------------------------------------------------------------
# Integrated: clean network
# ----------------------------------------------------------------------
def test_clean_network_every_request_acked_without_retries():
    net = build_net()
    tier = build_tier(net, rate=20.0)
    tier.start()
    net.run(5.0)
    tier.stop()
    net.run(3.0)
    tier.finalize()
    assert tier.requests > 50
    assert tier.succeeded == tier.requests
    assert tier.amplification == 1.0
    assert tier.failovers == 0
    assert tier.downgraded == 0
    assert tier.invariant_violations() == 0


def test_scripted_plan_is_deterministic_across_runs():
    def run_once():
        net = build_net(seed=42)
        tier = build_tier(net)
        nodes = sorted(net.nodes)
        plan = [
            ScriptedSessionRequest(at=0.1 * i, home=nodes[i % 3], dest=nodes[3 + i % 3])
            for i in range(12)
        ]
        tier.arm(plan)
        net.run(6.0)
        tier.finalize()
        return tier.outcome_log()

    first, second = run_once(), run_once()
    assert first == second
    assert len(first) == 12
    assert all(outcome == "ok" for _, outcome, _ in first)


# ----------------------------------------------------------------------
# Failover and breaker integration
# ----------------------------------------------------------------------
def test_crashed_home_ingress_fails_over_to_backup():
    net = build_net()
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    tier._install_observers()
    session = tier.sessions[0]
    net.crash(session.home)
    session.submit(nodes[3])
    net.run(3.0)
    tier.finalize()
    assert tier.succeeded == 1
    assert tier.failovers >= 1
    # The request went out through a backup, not the crashed home.
    [(key, outcome, attempts)] = tier.outcome_log()
    assert outcome == "ok"


def test_open_breaker_diverts_attempts_to_backup():
    net = build_net()
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    tier._install_observers()
    session = tier.sessions[0]
    breaker = tier.breaker(session.home)
    for _ in range(3):
        breaker.record_failure(net.sim.now)
    assert breaker.state == "open"
    session.submit(nodes[3])
    net.run(3.0)
    tier.finalize()
    assert tier.succeeded == 1
    assert tier.failovers >= 1


# ----------------------------------------------------------------------
# Typed admission NACKs
# ----------------------------------------------------------------------
# park_timeout is deliberately shorter than the admission tick interval:
# the expiry sweep runs before the release drain at each tick, so a
# parked offer always dies into a typed NACK instead of being released.
NACK_ADMISSION = AdmissionConfig(
    capacity_rate=0.5, floor_min=0.5, floor_max=0.5, burst_tokens=1.0,
    surge_max=1.0, park_capacity=4, park_timeout=0.01,
    source_idle_timeout=100.0,
)


def test_parked_request_that_expires_yields_local_nack_and_retry():
    net = build_net(admission=NACK_ADMISSION)
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    tier._install_observers()
    session = tier.sessions[0]
    # Two immediate submissions: one token in the bucket, so the second
    # offer parks and expires at the next tick -> typed NACK (home ==
    # ingress: the local short-circuit path) -> the session retries.
    for _ in range(4):
        tier.budget.accrue()  # bank a retry token so the NACK can retry
    session.submit(nodes[3])
    session.submit(nodes[3])
    net.run(6.0)
    tier.finalize()
    assert tier.nacks_consumed >= 1
    assert tier.retry_offers >= 1


def test_remote_nack_floods_back_to_home_ingress():
    net = build_net(admission=NACK_ADMISSION)
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    tier._install_observers()
    session = tier.sessions[0]
    # Force the home breaker open so attempts go out via a backup; NACKs
    # for parked-then-expired offers are emitted at the *backup* with
    # home = the session's home, so they must cross the overlay.
    breaker = tier.breaker(session.home)
    for _ in range(3):
        breaker.record_failure(net.sim.now)
    for _ in range(4):
        tier.budget.accrue()
    session.submit(nodes[3])
    session.submit(nodes[3])
    net.run(6.0)
    tier.finalize()
    assert tier.failovers >= 1
    assert tier.nacks_consumed >= 1


# ----------------------------------------------------------------------
# Destination-side idempotency
# ----------------------------------------------------------------------
def test_duplicate_deliveries_suppressed_but_reacked():
    net = build_net()
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    dest = net.node(nodes[3])
    message = SimpleNamespace(payload=REQUEST_PREFIX + "k1", source=nodes[0])
    tier._observe_delivery(message, dest)
    tier._observe_delivery(message, dest)  # a retry's duplicate copy
    assert tier.duplicates_suppressed == 1
    assert tier.double_processed == 0
    assert tier.acks_sent == 2  # every copy is (re-)acked
    assert tier.invariant_violations() == 0


def test_ack_payloads_resolve_only_known_keys():
    net = build_net()
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    home = net.node(nodes[0])
    # An ack for a key nobody is waiting on is ignored, not a crash
    # (e.g. the request already resolved, or a Byzantine fabrication).
    tier._observe_delivery(
        SimpleNamespace(payload=ACK_PREFIX + "ghost", source=nodes[3]), home
    )
    assert tier.succeeded == 0


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def test_priority_downgrades_under_pressure_never_below_floor():
    net = build_net()
    tier = build_tier(net)
    session = tier.sessions[0]
    node = net.node(session.home)
    config = tier.session_config
    assert session._effective_priority(node) == config.priority
    node.admission = SimpleNamespace(state=AdmissionState.PARK)
    assert session._effective_priority(node) == config.priority - 1
    node.admission = SimpleNamespace(state=AdmissionState.REJECT)
    assert session._effective_priority(node) == config.priority - 2
    # Budget-dry pressure stacks, but only once real accrual happened
    # (the bucket starts empty by design — no cold-start downgrade).
    tier.budget.accrued = 5.0
    tier.budget.tokens = 0.0
    assert session._effective_priority(node) == max(
        config.priority_floor, config.priority - 3
    )


def test_requests_shed_when_budget_dry_and_ingress_rejecting():
    net = build_net()
    tier = build_tier(net)
    nodes = sorted(net.nodes)
    session = tier.sessions[0]
    net.node(session.home).admission = SimpleNamespace(
        state=AdmissionState.REJECT
    )
    assert session.submit(nodes[3]) is None
    assert tier.shed == 1 and tier.requests == 1
    assert tier.base_offers == 0  # shed = zero interior load
    [(key, outcome, attempts)] = tier.outcome_log()
    assert outcome == "shed" and attempts == 0


# ----------------------------------------------------------------------
# Sessions-off baseline semantics
# ----------------------------------------------------------------------
def test_sessions_off_never_retries_or_fails_over():
    from repro.clients.slo import SESSIONS_OFF

    net = build_net()
    tier = build_tier(net, session=SESSIONS_OFF)
    nodes = sorted(net.nodes)
    tier._install_observers()
    session = tier.sessions[0]
    net.crash(nodes[3])  # the destination: no responder, no ack
    session.submit(nodes[3])
    net.run(6.0)
    tier.finalize()
    assert tier.failed == 1 and tier.succeeded == 0
    assert tier.retry_offers == 0 and tier.failovers == 0
    assert tier.amplification == 1.0
