"""Turret-style automated attack finding (Section VI-B1).

The paper used Turret to find message-validation bugs in Spines and then
fixed them; "further iterations of Turret have not revealed new issues".
These tests run small campaigns and require that no invariant violation
or crash is found.
"""

import pytest

from repro.byzantine.turret import FieldFuzzBehavior, TurretCampaign, TurretReport
from repro.overlay.config import OverlayConfig
from repro.topology.generators import clique, ring
from repro.topology import global_cloud


class TestCampaign:
    def test_clique_campaign_clean(self):
        campaign = TurretCampaign(
            lambda: clique(5), n_compromised=2, run_seconds=4.0, master_seed=100
        )
        report = campaign.run(6)
        assert report.ok, report.summary()

    def test_ring_campaign_clean(self):
        campaign = TurretCampaign(
            lambda: ring(5), n_compromised=1, run_seconds=4.0, master_seed=200
        )
        report = campaign.run(6)
        assert report.ok, report.summary()

    def test_global_cloud_campaign_clean(self):
        campaign = TurretCampaign(
            lambda: global_cloud.topology(),
            n_compromised=3,
            run_seconds=3.0,
            master_seed=300,
        )
        report = campaign.run(3)
        assert report.ok, report.summary()

    def test_iterations_are_reproducible(self):
        campaign = TurretCampaign(lambda: clique(4), run_seconds=2.0)
        a = campaign.run_iteration(seed=42)
        b = campaign.run_iteration(seed=42)
        assert a == b

    def test_different_seeds_draw_different_strategies(self):
        campaign = TurretCampaign(lambda: clique(5), run_seconds=1.0)
        outcomes = {campaign.run_iteration(seed=s).strategies for s in range(8)}
        assert len(outcomes) > 2


class TestReport:
    def test_summary_mentions_failures(self):
        from repro.byzantine.turret import TurretIteration

        bad = TurretIteration(
            seed=7, compromised=(1,), strategies=("drop",),
            violations=("duplicate priority delivery",),
        )
        report = TurretReport([bad])
        assert not report.ok
        assert "seed=7" in report.summary()
        assert "duplicate" in report.summary()

    def test_ok_report(self):
        report = TurretReport([])
        assert report.ok
        assert "0 failure" in report.summary()


class TestFieldFuzzer:
    def test_fuzzed_messages_rejected_downstream(self):
        """Whatever the fuzzer does to a message, correct nodes must not
        deliver it as valid traffic from the source."""
        import random

        from repro.overlay.network import OverlayNetwork
        from repro.topology.generators import line
        from repro.overlay.config import DisseminationMethod

        net = OverlayNetwork.build(line(3), OverlayConfig(link_bandwidth_bps=None))
        fuzzer = FieldFuzzBehavior(random.Random(1), fuzz_fraction=1.0)
        net.compromise(2, fuzzer)
        for _ in range(20):
            net.client(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(3.0)
        assert fuzzer.fuzzed > 0
        # A fuzz that changes any signed field breaks the signature; the
        # destination delivers nothing it can't authenticate.
        delivered = net.delivered_count(1, 3)
        rejected = net.node(3).invalid_messages_rejected
        assert delivered + rejected >= 1
        assert delivered == 0 or rejected > 0
