"""Unit tests for intrusion-tolerant link-state routing."""

import pytest

from repro.crypto.pki import Pki
from repro.errors import TopologyError
from repro.routing.link_state import LinkStateUpdate, UpdateRateLimiter
from repro.routing.state import FAILED_WEIGHT, RoutingState
from repro.routing.validation import UpdateResult, validate_update
from repro.topology.generators import ring
from repro.topology.graph import Topology
from repro.topology.mtmw import Mtmw


@pytest.fixture
def pki():
    p = Pki(seed=1)
    for node in range(1, 6):
        p.register(node)
    return p


@pytest.fixture
def mtmw(pki):
    return Mtmw.create(ring(5, weight=0.010), pki)


@pytest.fixture
def state(mtmw, pki):
    return RoutingState(mtmw, pki)


class TestUpdateSignatures:
    def test_create_and_verify(self, pki):
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.02, seqno=1)
        assert update.verify(pki)

    def test_tampered_weight_fails(self, pki):
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.02, seqno=1)
        tampered = LinkStateUpdate(1, 1, 2, 0.001, 1, update.signature)
        assert not tampered.verify(pki)

    def test_wrong_issuer_fails(self, pki):
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.02, seqno=1)
        relabeled = LinkStateUpdate(2, 1, 2, 0.02, 1, update.signature)
        assert not relabeled.verify(pki)


class TestMtmwValidation:
    def test_valid_update_accepted(self, mtmw, pki):
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.02, seqno=1)
        assert validate_update(update, mtmw, pki) is UpdateResult.ACCEPTED

    def test_below_min_weight_detected(self, mtmw, pki):
        """Black-hole attack: advertise a too-attractive weight."""
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.001, seqno=1)
        result = validate_update(update, mtmw, pki)
        assert result is UpdateResult.BELOW_MIN_WEIGHT
        assert result.proves_compromise

    def test_non_endpoint_detected(self, mtmw, pki):
        """A node may not change the weights of non-neighboring links."""
        update = LinkStateUpdate.create(pki, 4, 1, 2, 0.5, seqno=1)
        result = validate_update(update, mtmw, pki)
        assert result is UpdateResult.NOT_ENDPOINT
        assert result.proves_compromise

    def test_wormhole_link_detected(self, mtmw, pki):
        """Advertising a link that is not in the MTMW (wormhole)."""
        update = LinkStateUpdate.create(pki, 1, 1, 3, 0.001, seqno=1)
        result = validate_update(update, mtmw, pki)
        assert result is UpdateResult.UNKNOWN_LINK
        assert result.proves_compromise

    def test_bad_signature_not_provable(self, mtmw, pki):
        update = LinkStateUpdate(1, 1, 2, 0.02, 1, signature="junk")
        result = validate_update(update, mtmw, pki)
        assert result is UpdateResult.BAD_SIGNATURE
        assert not result.proves_compromise

    def test_exact_min_weight_allowed(self, mtmw, pki):
        update = LinkStateUpdate.create(pki, 1, 1, 2, 0.010, seqno=1)
        assert validate_update(update, mtmw, pki) is UpdateResult.ACCEPTED


class TestRoutingState:
    def test_initial_weights_are_mtmw_minimums(self, state):
        assert state.effective_weight(1, 2) == 0.010

    def test_accepted_update_raises_weight(self, state, pki):
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.5, seqno=1))
        assert state.effective_weight(1, 2) == 0.5

    def test_effective_weight_is_max_of_reports(self, state, pki):
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.5, seqno=1))
        state.apply_update(LinkStateUpdate.create(pki, 2, 1, 2, 0.02, seqno=1))
        assert state.effective_weight(1, 2) == 0.5

    def test_compromised_node_cannot_lower_below_peer_report(self, state, pki):
        """Node 2 (honest) reports the link bad; node 1 (compromised)
        re-advertising the minimum cannot win."""
        state.apply_update(LinkStateUpdate.create(pki, 2, 1, 2, 5.0, seqno=1))
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.010, seqno=1))
        assert state.effective_weight(1, 2) == 5.0

    def test_node_can_lower_its_own_previous_report(self, state, pki):
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 5.0, seqno=1))
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.010, seqno=2))
        assert state.effective_weight(1, 2) == 0.010

    def test_overtaken_by_events(self, state, pki):
        """Stale (lower seqno) updates are ignored — replay defense."""
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 5.0, seqno=10))
        result = state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.010, seqno=3))
        assert result is UpdateResult.STALE
        assert state.effective_weight(1, 2) == 5.0

    def test_provable_violation_marks_compromised(self, state, pki):
        state.apply_update(LinkStateUpdate.create(pki, 3, 1, 2, 0.5, seqno=1))
        assert 3 in state.detected_compromised

    def test_rate_limiting(self, mtmw, pki):
        state = RoutingState(mtmw, pki, update_rate_per_second=1.0, update_burst=3)
        results = [
            state.apply_update(
                LinkStateUpdate.create(pki, 1, 1, 2, 0.02 + i * 0.001, seqno=i), now=0.0
            )
            for i in range(6)
        ]
        assert results[:3] == [UpdateResult.ACCEPTED] * 3
        assert results[3:] == [UpdateResult.RATE_LIMITED] * 3
        # Tokens refill with time.
        later = state.apply_update(
            LinkStateUpdate.create(pki, 1, 1, 2, 0.5, seqno=10), now=5.0
        )
        assert later is UpdateResult.ACCEPTED


class TestRoutingGraph:
    def test_failed_link_excluded(self, state, pki):
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, FAILED_WEIGHT, seqno=1))
        assert not state.is_link_usable(1, 2)
        graph = state.graph()
        assert not graph.has_edge(1, 2)
        # The ring reroutes the long way.
        assert state.shortest_path(1, 2) == [1, 5, 4, 3, 2]

    def test_graph_cache_invalidated_on_update(self, state, pki):
        g1 = state.graph()
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, 0.5, seqno=1))
        g2 = state.graph()
        assert g1 is not g2
        assert g2.weight(1, 2) == 0.5

    def test_k_paths_on_current_view(self, state, pki):
        paths = state.k_paths(1, 3, 2)
        assert len(paths) == 2
        state.apply_update(LinkStateUpdate.create(pki, 1, 1, 2, FAILED_WEIGHT, seqno=1))
        remaining = state.k_paths_best_effort(1, 3, 2)
        assert len(remaining) == 1
        assert remaining[0] == [1, 5, 4, 3]

    def test_make_update_clamps_at_minimum(self, state):
        update = state.make_update(1, 2, weight=0.0001, seqno=1)
        assert update.weight == 0.010
        assert validate_update(update, state.mtmw, state.pki) is UpdateResult.ACCEPTED

    def test_make_update_rejects_non_neighbor(self, state):
        with pytest.raises(TopologyError):
            state.make_update(1, 3, weight=1.0, seqno=1)


class TestRateLimiter:
    def test_burst_then_refill(self):
        limiter = UpdateRateLimiter(rate_per_second=2.0, burst=2)
        assert limiter.allow(0.0)
        assert limiter.allow(0.0)
        assert not limiter.allow(0.0)
        assert limiter.allow(0.5)  # one token refilled

    def test_tokens_capped_at_burst(self):
        limiter = UpdateRateLimiter(rate_per_second=100.0, burst=2)
        assert limiter.allow(100.0)
        assert limiter.allow(100.0)
        assert not limiter.allow(100.0)
