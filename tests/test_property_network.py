"""Property-based whole-network tests.

Hypothesis drives random topologies, workloads, attacker placements, and
fault schedules; the paper's guarantees are checked as invariants:

* determinism: the same seed reproduces the identical history;
* priority: at-most-once delivery, only genuinely sent messages arrive,
  expired messages never arrive;
* reliable: exactly-once, in-order, gapless prefix delivery — under
  Byzantine drops and crash/recovery — and completeness when a correct
  path exists;
* flooding optimality: delivery whenever a correct path exists.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.byzantine.behaviors import DroppingBehavior, DuplicatingBehavior
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import random_connected

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAST_CFG = OverlayConfig(link_bandwidth_bps=None)
PACED_CFG = OverlayConfig(link_bandwidth_bps=1e6)


def build_random(seed, nodes=7, extra=8, config=FAST_CFG):
    topo = random_connected(nodes, extra_edges=extra, rng=random.Random(seed))
    return OverlayNetwork.build(topo, config, seed=seed)


class TestDeterminism:
    @SLOW
    @given(st.integers(min_value=0, max_value=10_000))
    def test_identical_seeds_identical_histories(self, seed):
        def run():
            net = build_random(seed, config=PACED_CFG)
            nodes = sorted(net.topology.nodes)
            rng = random.Random(seed)
            for _ in range(10):
                src, dst = rng.sample(nodes, 2)
                net.node(src).send_priority(dst, size_bytes=rng.randrange(100, 1200))
            net.run(5.0)
            return (
                net.sim.events_run,
                net.stats.counters(),
                sorted(
                    (name, meter.total_bytes)
                    for name, meter in net.stats._meters.items()
                ),
            )

        assert run() == run()


class TestPriorityInvariants:
    @SLOW
    @given(st.integers(min_value=0, max_value=10_000), st.integers(1, 3))
    def test_at_most_once_and_authentic(self, seed, attackers):
        net = build_random(seed)
        nodes = sorted(net.topology.nodes)
        rng = random.Random(seed)
        compromised = rng.sample(nodes, attackers)
        for node_id in compromised:
            net.compromise(node_id, DuplicatingBehavior(copies=2))
        correct = [n for n in nodes if n not in compromised]
        if len(correct) < 2:
            return
        src, dst = correct[0], correct[-1]
        delivered = []
        net.node(dst).on_deliver = lambda m: delivered.append(m.uid)
        sent = {net.node(src).send_priority(dst).uid for _ in range(8)}
        net.run(5.0)
        assert len(delivered) == len(set(delivered))  # at most once
        assert set(delivered) <= sent                 # only authentic

    @SLOW
    @given(st.integers(min_value=0, max_value=10_000))
    def test_flooding_delivers_iff_correct_path_exists(self, seed):
        net = build_random(seed)
        nodes = sorted(net.topology.nodes)
        rng = random.Random(seed)
        compromised = set(rng.sample(nodes, min(2, len(nodes) - 2)))
        for node_id in compromised:
            net.compromise(node_id, DroppingBehavior())
        correct = [n for n in nodes if n not in compromised]
        src, dst = correct[0], correct[-1]
        path_exists = dst in net.topology.reachable_from(
            src, exclude_nodes=compromised
        )
        net.node(src).send_priority(dst)
        net.run(5.0)
        if path_exists:
            assert net.delivered_count(src, dst) == 1
        else:
            assert net.delivered_count(src, dst) == 0

    @SLOW
    @given(st.integers(min_value=0, max_value=10_000))
    def test_expired_messages_never_delivered(self, seed):
        net = build_random(seed, config=PACED_CFG)
        nodes = sorted(net.topology.nodes)
        src, dst = nodes[0], nodes[-1]
        delivered = []
        net.node(dst).on_deliver = lambda m: delivered.append(m)
        net.node(src).send_priority(dst, expire_after=1e-6)
        net.run(3.0)
        for message in delivered:
            assert not message.is_expired(net.sim.now)


class TestReliableInvariants:
    @SLOW
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=40),
        st.booleans(),
    )
    def test_exactly_once_in_order_gapless(self, seed, count, use_kpaths):
        net = build_random(seed, config=PACED_CFG)
        nodes = sorted(net.topology.nodes)
        rng = random.Random(seed)
        attacker = rng.choice(nodes[1:-1])
        net.compromise(attacker, DroppingBehavior(drop_fraction=0.5, rng=rng))
        src, dst = nodes[0], nodes[-1]
        if attacker in (src, dst):
            return
        method = (
            DisseminationMethod.k_paths(2) if use_kpaths
            else DisseminationMethod.flooding()
        )
        received = []
        net.node(dst).on_deliver = lambda m: received.append(m.seq)
        sent = [0]

        def tick():
            while sent[0] < count and net.node(src).send_reliable(
                dst, size_bytes=400, method=method
            ):
                sent[0] += 1
            if sent[0] < count:
                net.sim.schedule(0.05, tick)

        tick()
        net.run(30.0)
        # The prefix property: whatever arrived is the exact prefix.
        assert received == list(range(1, len(received) + 1))

    @SLOW
    @given(st.integers(min_value=0, max_value=10_000))
    def test_completeness_across_crash_recovery(self, seed):
        net = build_random(seed, nodes=6, extra=6, config=PACED_CFG)
        nodes = sorted(net.topology.nodes)
        rng = random.Random(seed)
        src, dst = nodes[0], nodes[-1]
        victim = rng.choice(nodes[1:-1])
        received = []
        net.node(dst).on_deliver = lambda m: received.append(m.seq)
        count = 30
        sent = [0]

        def tick():
            while sent[0] < count and net.node(src).send_reliable(dst, size_bytes=400):
                sent[0] += 1
            if sent[0] < count:
                net.sim.schedule(0.05, tick)

        tick()
        net.run(0.5)
        net.crash(victim)
        net.run(2.0)
        net.recover(victim)
        net.run(40.0)
        assert sent[0] == count
        assert received == list(range(1, count + 1))
