"""Unit tests for measurement primitives."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.stats import GoodputMeter, LatencyRecorder, StatsRegistry, TimeSeries


class TestGoodputMeter:
    def test_series_buckets_bytes(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.5, meter.record, 125_000)   # 1 Mbit in bucket 0
        sim.schedule(1.5, meter.record, 250_000)   # 2 Mbit in bucket 1
        sim.run(until=3.0)
        series = meter.series(0.0, 3.0)
        assert series == [(0.0, pytest.approx(1.0)), (1.0, pytest.approx(2.0)), (2.0, 0.0)]

    def test_average_mbps(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.1, meter.record, 125_000)
        sim.schedule(1.1, meter.record, 125_000)
        sim.run(until=2.0)
        assert meter.average_mbps(0.0, 2.0) == pytest.approx(1.0)
        assert meter.average_mbps(5.0, 5.0) == 0.0

    def test_total_and_first_last(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        sim.schedule(2.0, meter.record, 10)
        sim.schedule(4.0, meter.record, 20)
        sim.run()
        assert meter.total_bytes == 30
        assert meter.first_time == 2.0
        assert meter.last_time == 4.0


class TestLatencyRecorder:
    def test_summary_statistics(self):
        rec = LatencyRecorder()
        for i, lat in enumerate([0.010, 0.020, 0.030, 0.040]):
            rec.record(float(i), lat)
        assert rec.count == 4
        assert rec.mean() == pytest.approx(0.025)
        assert rec.maximum() == pytest.approx(0.040)
        assert rec.percentile(0) == pytest.approx(0.010)
        assert rec.percentile(100) == pytest.approx(0.040)
        assert rec.percentile(50) == pytest.approx(0.025)

    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.mean() == 0.0
        assert rec.percentile(50) == 0.0
        assert rec.maximum() == 0.0

    def test_single_sample_percentile(self):
        rec = LatencyRecorder()
        rec.record(0.0, 0.5)
        assert rec.percentile(99) == 0.5


class TestTimeSeriesAndRegistry:
    def test_time_series(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.times() == [1.0, 2.0]
        assert ts.values() == [10.0, 20.0]
        assert len(ts) == 2

    def test_registry_reuses_instances(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        assert stats.counter("a") is stats.counter("a")
        assert stats.goodput("g") is stats.goodput("g")
        assert stats.latency("l") is stats.latency("l")
        assert stats.series("s") is stats.series("s")

    def test_counters_snapshot(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("sent").add(3)
        stats.counter("dropped").add()
        assert stats.counters() == {"sent": 3, "dropped": 1}
