"""Unit tests for measurement primitives."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.stats import GoodputMeter, LatencyRecorder, StatsRegistry, TimeSeries


class TestGoodputMeter:
    def test_series_buckets_bytes(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.5, meter.record, 125_000)   # 1 Mbit in bucket 0
        sim.schedule(1.5, meter.record, 250_000)   # 2 Mbit in bucket 1
        sim.run(until=3.0)
        series = meter.series(0.0, 3.0)
        assert series == [(0.0, pytest.approx(1.0)), (1.0, pytest.approx(2.0)), (2.0, 0.0)]

    def test_average_mbps(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.1, meter.record, 125_000)
        sim.schedule(1.1, meter.record, 125_000)
        sim.run(until=2.0)
        assert meter.average_mbps(0.0, 2.0) == pytest.approx(1.0)
        assert meter.average_mbps(5.0, 5.0) == 0.0

    def test_total_and_first_last(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        sim.schedule(2.0, meter.record, 10)
        sim.schedule(4.0, meter.record, 20)
        sim.run()
        assert meter.total_bytes == 30
        assert meter.first_time == 2.0
        assert meter.last_time == 4.0

    def test_average_prorates_partial_boundary_buckets(self):
        # Regression: a window starting mid-bucket used to inherit the
        # whole boundary bucket's bytes, overstating Mbps by up to
        # interval / (end - start).
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.25, meter.record, 125_000)  # 1 Mbit, all in bucket 0
        sim.run(until=2.0)
        # [0.5, 1.5) overlaps half of bucket 0: half the bytes, 1 second.
        assert meter.average_mbps(0.5, 1.5) == pytest.approx(0.5)
        # The aligned window still sees everything.
        assert meter.average_mbps(0.0, 1.0) == pytest.approx(1.0)
        # A window wholly inside bucket 0 gets the bucket's average rate.
        assert meter.average_mbps(0.25, 0.75) == pytest.approx(1.0)

    def test_series_clamps_labels_to_window(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.25, meter.record, 125_000)
        sim.run(until=3.0)
        series = meter.series(0.5, 2.0)
        # The first point is labelled at the window start, not bucket 0's
        # start; boundary buckets report their average rate.
        assert series == [(0.5, pytest.approx(1.0)), (1.0, 0.0)]

    def test_empty_and_inverted_windows(self):
        sim = Simulator()
        meter = GoodputMeter(sim, interval=1.0)
        sim.schedule(0.5, meter.record, 1000)
        sim.run(until=1.0)
        assert meter.series(2.0, 2.0) == []
        assert meter.series(3.0, 1.0) == []
        assert meter.average_mbps(3.0, 1.0) == 0.0


class TestLatencyRecorder:
    def test_summary_statistics(self):
        rec = LatencyRecorder()
        for i, lat in enumerate([0.010, 0.020, 0.030, 0.040]):
            rec.record(float(i), lat)
        assert rec.count == 4
        assert rec.mean() == pytest.approx(0.025)
        assert rec.maximum() == pytest.approx(0.040)
        assert rec.percentile(0) == pytest.approx(0.010)
        assert rec.percentile(100) == pytest.approx(0.040)
        assert rec.percentile(50) == pytest.approx(0.025)

    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.mean() == 0.0
        assert rec.percentile(50) == 0.0
        assert rec.maximum() == 0.0

    def test_single_sample_percentile(self):
        rec = LatencyRecorder()
        rec.record(0.0, 0.5)
        assert rec.percentile(99) == 0.5

    def test_percentile_out_of_range_rejected(self):
        rec = LatencyRecorder()
        rec.record(0.0, 0.5)
        with pytest.raises(ValueError):
            rec.percentile(-0.1)
        with pytest.raises(ValueError):
            rec.percentile(100.1)

    def test_boundary_percentiles_are_exact(self):
        # p=0 / p=100 must return the observed extremes bit-exactly (no
        # interpolation arithmetic that could perturb the last ulp).
        rec = LatencyRecorder()
        values = [0.1 + i * 0.0305175781251 for i in range(7)]
        for i, v in enumerate(values):
            rec.record(float(i), v)
        assert rec.percentile(0.0) == min(values)
        assert rec.percentile(100.0) == max(values)

    def test_sorted_cache_invalidated_by_record(self):
        # Regression: percentile() used to re-sort on every call; the
        # cached sorted view must still see samples recorded after a query.
        rec = LatencyRecorder()
        rec.record(0.0, 0.030)
        rec.record(1.0, 0.010)
        assert rec.percentile(100.0) == pytest.approx(0.030)
        rec.record(2.0, 0.050)  # must invalidate the cached sort
        assert rec.percentile(100.0) == pytest.approx(0.050)
        assert rec.percentile(0.0) == pytest.approx(0.010)
        assert rec.maximum() == pytest.approx(0.050)

    def test_percentile_reuses_sorted_view(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(float(i), float(i % 10))
        rec.percentile(50.0)
        cached = rec._sorted
        assert cached is not None
        rec.percentile(90.0)
        assert rec._sorted is cached  # no re-sort between queries
        rec.record(100.0, 99.0)
        assert rec._sorted is None  # invalidated


class TestTimeSeriesAndRegistry:
    def test_time_series(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.times() == [1.0, 2.0]
        assert ts.values() == [10.0, 20.0]
        assert len(ts) == 2

    def test_registry_reuses_instances(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        assert stats.counter("a") is stats.counter("a")
        assert stats.goodput("g") is stats.goodput("g")
        assert stats.latency("l") is stats.latency("l")
        assert stats.series("s") is stats.series("s")

    def test_counters_snapshot(self):
        sim = Simulator()
        stats = StatsRegistry(sim)
        stats.counter("sent").add(3)
        stats.counter("dropped").add()
        assert stats.counters() == {"sent": 3, "dropped": 1}
