"""Unit tests for the duplicate-suppression metadata store."""

from hypothesis import given, strategies as st

from repro.messaging.metadata import MetadataStore


class TestDuplicateDetection:
    def test_new_uid_recorded(self):
        store = MetadataStore()
        assert store.check_and_record(("s", 1), expiration=10.0, now=0.0)

    def test_duplicate_rejected(self):
        store = MetadataStore()
        store.check_and_record(("s", 1), 10.0, 0.0)
        assert not store.check_and_record(("s", 1), 10.0, 1.0)
        assert store.duplicates_detected == 1

    def test_distinct_uids_independent(self):
        store = MetadataStore()
        assert store.check_and_record(("s", 1), 10.0, 0.0)
        assert store.check_and_record(("s", 2), 10.0, 0.0)
        assert store.check_and_record(("t", 1), 10.0, 0.0)

    def test_seen(self):
        store = MetadataStore()
        store.check_and_record(("s", 1), 10.0, 0.0)
        assert store.seen(("s", 1), now=5.0)
        assert not store.seen(("s", 1), now=11.0)
        assert not store.seen(("s", 2), now=0.0)


class TestExpiry:
    def test_expired_uid_reclaimed(self):
        store = MetadataStore()
        store.check_and_record(("s", 1), expiration=5.0, now=0.0)
        # After expiry the uid can be recorded again (the message itself
        # is expired network-wide, so a replay is harmless).
        assert store.check_and_record(("s", 1), 20.0, now=6.0)

    def test_memory_reclaimed(self):
        store = MetadataStore()
        for i in range(100):
            store.check_and_record(("s", i), expiration=1.0, now=0.0)
        assert len(store) == 100
        store.check_and_record(("t", 0), expiration=10.0, now=2.0)
        assert len(store) == 1

    def test_lifetime_capped_against_malicious_expirations(self):
        store = MetadataStore(max_lifetime=10.0)
        store.check_and_record(("s", 1), expiration=1e9, now=0.0)
        store.check_and_record(("t", 1), expiration=100.0, now=11.0)
        assert len(store) == 1  # the first entry was capped and collected

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=50))
    def test_property_each_uid_accepted_exactly_once_before_expiry(self, seqs):
        store = MetadataStore()
        accepted = [seq for seq in seqs if store.check_and_record(("s", seq), 1e6, 0.0)]
        assert sorted(accepted) == sorted(set(seqs))
