"""Unit tests for cumulative nonce chains (opt-ack defense)."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.crypto.nonces import CumulativeNonceChain, NonceVerifier
from repro.errors import ProtocolError


def exchange(n):
    """Simulate a sender/receiver pair over n packets; return both sides."""
    sender = NonceVerifier()
    receiver = CumulativeNonceChain()
    nonces = [os.urandom(8) for _ in range(n)]
    for seq, nonce in enumerate(nonces):
        sender.register(seq, nonce)
        receiver.fold(seq, nonce)
    return sender, receiver


class TestHonestExchange:
    def test_valid_proof_accepted(self):
        sender, receiver = exchange(5)
        assert sender.check(4, receiver.proof())
        assert sender.acked_up_to == 4

    def test_intermediate_proofs_accepted(self):
        sender = NonceVerifier()
        receiver = CumulativeNonceChain()
        for seq in range(10):
            nonce = os.urandom(8)
            sender.register(seq, nonce)
            receiver.fold(seq, nonce)
            assert sender.check(seq, receiver.proof())

    def test_stale_duplicate_ack_ignored_but_harmless(self):
        sender, receiver = exchange(3)
        proof = receiver.proof()
        assert sender.check(2, proof)
        assert not sender.check(2, proof)  # duplicate
        assert sender.acked_up_to == 2


class TestOptimisticAckAttack:
    def test_ack_for_unreceived_data_rejected(self):
        """A malicious receiver cannot acknowledge data it never saw."""
        sender = NonceVerifier()
        for seq in range(5):
            sender.register(seq, os.urandom(8))
        # Attacker guesses proofs without the nonces.
        assert not sender.check(4, os.urandom(16))
        assert not sender.check(4, b"\x00" * 16)
        assert sender.acked_up_to == -1

    def test_ack_beyond_sent_data_rejected(self):
        sender, receiver = exchange(3)
        assert not sender.check(10, receiver.proof())

    def test_receiver_missing_one_packet_cannot_ack_past_it(self):
        sender = NonceVerifier()
        receiver = CumulativeNonceChain()
        nonces = [os.urandom(8) for _ in range(4)]
        for seq, nonce in enumerate(nonces):
            sender.register(seq, nonce)
        receiver.fold(0, nonces[0])
        receiver.fold(1, nonces[1])
        # Receiver never got packet 2; folds a guess for it.
        receiver.fold(2, os.urandom(8))
        receiver.fold(3, nonces[3])
        assert not sender.check(3, receiver.proof())

    def test_proof_depends_on_order(self):
        a = CumulativeNonceChain()
        b = CumulativeNonceChain()
        n0, n1 = os.urandom(8), os.urandom(8)
        a.fold(0, n0)
        a.fold(1, n1)
        b.fold(0, n1)
        b.fold(1, n0)
        assert a.proof() != b.proof()


class TestStateMachine:
    def test_out_of_order_fold_rejected(self):
        chain = CumulativeNonceChain()
        chain.fold(0, b"x" * 8)
        with pytest.raises(ProtocolError):
            chain.fold(2, b"y" * 8)

    def test_out_of_order_register_rejected(self):
        verifier = NonceVerifier()
        verifier.register(0, b"x" * 8)
        with pytest.raises(ProtocolError):
            verifier.register(5, b"y" * 8)

    def test_memory_reclaimed_after_ack(self):
        sender, receiver = exchange(100)
        sender.check(99, receiver.proof())
        assert len(sender._expected) == 0

    @given(st.integers(min_value=1, max_value=40))
    def test_property_honest_receiver_always_verifiable(self, n):
        sender, receiver = exchange(n)
        assert sender.check(n - 1, receiver.proof())
