"""Unit tests for live-runtime fault injection.

Covers the :class:`DatagramFaultInjector` decision table, the
:class:`ChaosUdpTransport` send-side interposition over real sockets, and
the :class:`LiveChaosEngine` crash refcounting against a fake supervisor.
The full schedule-driven run is covered by ``tests/test_live_chaos.py``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.faults.chaos import MAX_COMPOSED_LOSS
from repro.faults.schedule import FaultSchedule
from repro.link.por import _HelloWrapper
from repro.messaging.message import Hello
from repro.runtime.chaos import (
    DUPLICATE_LAG,
    REORDER_WINDOW,
    ChaosUdpTransport,
    DatagramFaultInjector,
    LiveChaosEngine,
)


def injector(seed=0):
    return DatagramFaultInjector(random.Random(seed))


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# DatagramFaultInjector decision table
# ----------------------------------------------------------------------
def test_clear_link_passes_datagrams_through_unchanged():
    inj = injector()
    assert inj.plan("a", "b", b"payload") == [(0.0, b"payload")]
    assert inj.summary() == {
        "partition_drops": 0, "losses": 0, "duplicates": 0,
        "reorders": 0, "corruptions": 0, "delayed": 0,
    }


def test_partition_drops_both_directions_and_is_refcounted():
    inj = injector()
    inj.fail_edge("a", "b")
    inj.fail_edge("a", "b")  # overlapping fault on the same edge
    assert inj.plan("a", "b", b"x") == []
    assert inj.plan("b", "a", b"x") == []
    inj.restore_edge("a", "b")
    assert inj.plan("a", "b", b"x") == []  # one fault still active
    inj.restore_edge("a", "b")
    assert inj.plan("a", "b", b"x") == [(0.0, b"x")]
    assert inj.plan("b", "a", b"x") == [(0.0, b"x")]
    assert inj.summary()["partition_drops"] == 3


def test_loss_drops_the_configured_fraction():
    inj = injector()
    inj.set_impairment("a", "b", loss=0.94)
    dropped = sum(not inj.plan("a", "b", b"x") for _ in range(1000))
    assert 880 <= dropped <= 990  # Bernoulli(0.94), seeded draw
    assert inj.summary()["losses"] == dropped


def test_loss_is_capped_at_composed_maximum():
    inj = injector()
    inj.set_impairment("a", "b", loss=1.0)
    assert inj.state("a", "b").loss == MAX_COMPOSED_LOSS
    survived = sum(bool(inj.plan("a", "b", b"x")) for _ in range(2000))
    assert survived > 0  # never a guaranteed black hole


def test_duplication_emits_trailing_copy():
    inj = injector()
    inj.set_impairment("a", "b", dup=1.0)
    actions = inj.plan("a", "b", b"x")
    assert len(actions) == 2
    (delay_a, payload_a), (delay_b, payload_b) = actions
    assert payload_a == payload_b == b"x"
    assert delay_b == pytest.approx(delay_a + DUPLICATE_LAG)
    assert inj.summary()["duplicates"] == 1


def test_reorder_draws_delay_inside_window():
    inj = injector()
    inj.set_impairment("a", "b", reorder=1.0)
    for _ in range(20):
        [(delay, _)] = inj.plan("a", "b", b"x")
        assert REORDER_WINDOW[0] <= delay <= REORDER_WINDOW[1]
    assert inj.summary()["reorders"] == 20


def test_extra_delay_applies_to_every_datagram():
    inj = injector()
    inj.set_impairment("a", "b", delay=0.02)
    [(delay, _)] = inj.plan("a", "b", b"x")
    assert delay == pytest.approx(0.02)
    assert inj.summary()["delayed"] == 1


def test_corruption_flips_bits_but_keeps_length():
    inj = injector()
    inj.set_impairment("a", "b", corrupt=1.0)
    original = bytes(range(64))
    [(_, payload)] = inj.plan("a", "b", original)
    assert payload != original
    assert len(payload) == len(original)
    # 1-4 bit flips: Hamming distance in bits is small and positive.
    distance = sum(
        bin(x ^ y).count("1") for x, y in zip(payload, original)
    )
    assert 1 <= distance <= 4
    assert inj.summary()["corruptions"] == 1


def test_impairment_is_directionless_and_replaceable():
    inj = injector()
    inj.set_impairment("a", "b", loss=0.5, delay=0.01)
    assert inj.state("b", "a").loss == 0.5
    assert inj.state("b", "a").delay == 0.01
    inj.set_impairment("a", "b")  # engine recomposed to "no impairment"
    assert inj.state("a", "b").clear
    assert inj.plan("a", "b", b"x") == [(0.0, b"x")]


# ----------------------------------------------------------------------
# ChaosUdpTransport: interposition on real sockets
# ----------------------------------------------------------------------
def test_chaos_transport_applies_partition_and_heals():
    async def check():
        inj = injector()
        a = await ChaosUdpTransport.open("a", injector=inj)
        b = await ChaosUdpTransport.open("b", injector=inj)
        a.register_peer("b", b.local_address)
        received = []
        b.register_peer("a", a.local_address).on_receive = received.append
        hello = _HelloWrapper(Hello("a", 1))

        inj.fail_edge("a", "b")
        a.send_channel("b").send(hello, 24)
        await asyncio.sleep(0.05)
        assert received == []
        assert inj.summary()["partition_drops"] == 1

        inj.restore_edge("a", "b")
        a.send_channel("b").send(hello, 24)
        await asyncio.sleep(0.05)
        assert len(received) == 1
        a.close()
        b.close()

    run(check())


def test_chaos_transport_delivers_delayed_and_duplicated_datagrams():
    async def check():
        inj = injector()
        a = await ChaosUdpTransport.open("a", injector=inj)
        b = await ChaosUdpTransport.open("b", injector=inj)
        a.register_peer("b", b.local_address)
        received = []
        b.register_peer("a", a.local_address).on_receive = received.append
        inj.set_impairment("a", "b", dup=1.0, delay=0.02)

        a.send_channel("b").send(_HelloWrapper(Hello("a", 2)), 24)
        await asyncio.sleep(0.005)
        assert received == []  # still inside the injected delay
        await asyncio.sleep(0.1)
        assert len(received) == 2  # original + trailing duplicate
        a.close()
        b.close()

    run(check())


def test_chaos_transport_without_injector_is_plain_udp():
    async def check():
        a = await ChaosUdpTransport.open("a")
        b = await ChaosUdpTransport.open("b")
        a.register_peer("b", b.local_address)
        received = []
        b.register_peer("a", a.local_address).on_receive = received.append
        a.send_channel("b").send(_HelloWrapper(Hello("a", 3)), 24)
        await asyncio.sleep(0.05)
        assert len(received) == 1
        a.close()
        b.close()

    run(check())


def test_delayed_send_after_close_is_dropped():
    async def check():
        inj = injector()
        a = await ChaosUdpTransport.open("a", injector=inj)
        b = await ChaosUdpTransport.open("b", injector=inj)
        a.register_peer("b", b.local_address)
        received = []
        b.register_peer("a", a.local_address).on_receive = received.append
        inj.set_impairment("a", "b", delay=0.03)
        a.send_channel("b").send(_HelloWrapper(Hello("a", 4)), 24)
        a.close()  # closes before the delayed copy fires
        await asyncio.sleep(0.1)
        assert received == []
        b.close()

    run(check())


# ----------------------------------------------------------------------
# LiveChaosEngine: crash faults route to the supervisor, refcounted
# ----------------------------------------------------------------------
class FakeSupervisor:
    def __init__(self):
        self.calls = []

    def kill(self, node, reason="fault", hold=False):
        self.calls.append(("kill", node, hold))

    def release(self, node):
        self.calls.append(("release", node))


class FakeStats:
    def counter(self, name):
        class _C:
            def add(self, amount=1):
                pass

        return _C()


class FakeEngineDeployment:
    """Just enough of the network duck type for ChaosEngine.__init__."""

    def __init__(self):
        self.sim = None
        self.topology = None
        self.stats = FakeStats()


def make_engine():
    schedule = FaultSchedule(faults=(), seed=0, duration=1.0)
    inj = injector()
    supervisor = FakeSupervisor()
    engine = LiveChaosEngine(
        FakeEngineDeployment(), schedule, inj, supervisor
    )
    return engine, inj, supervisor


def test_engine_link_hooks_drive_the_injector():
    engine, inj, _ = make_engine()
    engine._take_edge_down(("a", "b"))
    assert inj.state("a", "b").down_refs == 1
    engine._install_impairment(("a", "b"), 0.2, 0.1, 0.3, 0.05, 0.01)
    state = inj.state("b", "a")
    assert (state.loss, state.dup, state.reorder) == (0.2, 0.1, 0.3)
    assert (state.corrupt, state.delay) == (0.05, 0.01)
    engine._bring_edge_up(("a", "b"))
    assert inj.state("a", "b").down_refs == 0


def test_engine_crash_refcounting_kills_once_releases_once():
    engine, _, supervisor = make_engine()
    engine._crash_node("n")
    engine._crash_node("n")  # overlapping crash faults
    assert supervisor.calls == [("kill", "n", True)]
    engine._recover_node("n")
    assert supervisor.calls == [("kill", "n", True)]  # still held
    engine._recover_node("n")
    assert supervisor.calls[-1] == ("release", "n")
    assert len(supervisor.calls) == 2
