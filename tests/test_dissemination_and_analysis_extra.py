"""Additional coverage: analysis edge cases, generators, stats registry."""

import pytest

from repro.errors import TopologyError
from repro.topology.analysis import (
    average_shortest_metrics,
    engineered_flooding_cost,
    naive_flooding_cost,
    table3,
)
from repro.topology.disjoint import DisjointPathError
from repro.topology.generators import chordal_ring, random_k_connected
from repro.topology.graph import Topology
from repro.topology import global_cloud


class TestAnalysisEdgeCases:
    def test_disconnected_topology_rejected(self):
        topo = Topology()
        topo.add_edge(1, 2, 1.0)
        topo.add_node(3)
        with pytest.raises(DisjointPathError):
            average_shortest_metrics(topo)

    def test_flooding_costs_use_edge_count(self):
        topo = Topology()
        for a, b in [(1, 2), (2, 3), (3, 1)]:
            topo.add_edge(a, b, 1.0)
        assert naive_flooding_cost(topo, baseline_hops=1.0).avg_hops == 6.0
        assert engineered_flooding_cost(topo, baseline_hops=1.0).avg_hops == 3.0
        assert naive_flooding_cost(topo, baseline_hops=2.0).scaled_cost == 3.0

    def test_table3_rows_complete(self):
        topo = chordal_ring(8)
        rows = table3(topo, ks=(1, 2))
        assert set(rows) == {"K=1", "K=2", "Naive Flooding", "Engineered Flooding"}


class TestGenerators:
    def test_chordal_ring_regularity(self):
        topo = chordal_ring(8, chords=2)
        assert all(topo.degree(v) >= 4 for v in topo.nodes)

    def test_random_k_connected_meets_requirement(self):
        from repro.topology.analysis import minimum_pair_connectivity

        topo = random_k_connected(8, k=3)
        assert minimum_pair_connectivity(topo) >= 3

    def test_global_cloud_evaluation_flows_multi_region(self):
        regions = {
            global_cloud.region_of(s) for s, _ in global_cloud.EVALUATION_FLOWS
        } | {global_cloud.region_of(d) for _, d in global_cloud.EVALUATION_FLOWS}
        assert len(regions) == 3  # the flows span all three continents


class TestFloodingCorrectnessAtScale:
    def test_every_pair_deliverable_on_cloud(self):
        """Constrained flooding delivers between every node pair of the
        deployment topology (smoke-level completeness)."""
        from repro.overlay.config import OverlayConfig
        from repro.overlay.network import OverlayNetwork

        net = OverlayNetwork.build(
            global_cloud.topology(), OverlayConfig(link_bandwidth_bps=None)
        )
        pairs = [(1, 9), (9, 1), (6, 12), (12, 6), (5, 8), (11, 7)]
        for source, dest in pairs:
            net.node(source).send_priority(dest)
        net.run(3.0)
        for source, dest in pairs:
            assert net.delivered_count(source, dest) == 1, (source, dest)

    def test_k3_paths_exist_for_all_pairs(self):
        from repro.topology.disjoint import k_node_disjoint_paths

        topo = global_cloud.topology()
        for a, b in list(topo.node_pairs())[:20]:
            paths = k_node_disjoint_paths(topo, a, b, 3)
            assert len(paths) == 3
