"""Tests for the live runtime: scheduler semantics, seam conformance,
UDP transport dispatch, and a real end-to-end localhost deployment.

The end-to-end cases boot actual UDP sockets on 127.0.0.1 and run the
unmodified protocol stack for about a second of wall clock — slow for a
unit test, but this is the only tier that proves the sim/live seam holds
on real sockets.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError, LiveRuntimeError
from repro.link.por import _HelloWrapper
from repro.messaging.message import Hello, Semantics
from repro.runtime.interfaces import (
    CancellableHandle,
    ClockLike,
    SchedulerLike,
    TransportLike,
)
from repro.runtime.live import LiveConfig, LiveDeployment, live_topology, run_live
from repro.runtime.scheduler import AsyncioScheduler
from repro.runtime.transport import AsyncioUdpTransport
from repro.runtime.wire import encode_datagram
from repro.sim.channel import Channel, ChannelConfig, SimTransport
from repro.sim.engine import PeriodicTimer, Simulator


def run(coro):
    """Run a coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Seam conformance: both substrates satisfy the runtime protocols
# ----------------------------------------------------------------------
def test_simulator_satisfies_scheduler_protocol():
    sim = Simulator(seed=1)
    assert isinstance(sim, SchedulerLike)
    assert isinstance(sim, ClockLike)
    handle = sim.schedule(1.0, lambda: None)
    assert isinstance(handle, CancellableHandle)


def test_asyncio_scheduler_satisfies_scheduler_protocol():
    async def check():
        scheduler = AsyncioScheduler(seed=1)
        assert isinstance(scheduler, SchedulerLike)
        assert isinstance(scheduler, ClockLike)
        handle = scheduler.schedule(1.0, lambda: None)
        assert isinstance(handle, CancellableHandle)
        handle.cancel()

    run(check())


def test_sim_channel_satisfies_transport_protocol():
    sim = Simulator()
    channel = Channel(sim, ChannelConfig(latency=0.01))
    assert isinstance(channel, TransportLike)
    assert SimTransport is Channel


def test_udp_channels_satisfy_transport_protocol():
    async def check():
        transport = await AsyncioUdpTransport.open("a")
        transport.register_peer("b", ("127.0.0.1", 9))
        assert isinstance(transport.send_channel("b"), TransportLike)
        assert isinstance(transport.receive_channel("b"), TransportLike)
        transport.close()

    run(check())


# ----------------------------------------------------------------------
# AsyncioScheduler semantics
# ----------------------------------------------------------------------
def test_scheduler_runs_callbacks_in_order():
    async def check():
        scheduler = AsyncioScheduler(seed=0)
        fired = []
        scheduler.schedule(0.03, fired.append, "late")
        scheduler.schedule(0.01, fired.append, "early")
        scheduler.call_soon(fired.append, "soon")
        await asyncio.sleep(0.08)
        assert fired == ["soon", "early", "late"]
        assert scheduler.events_run == 3
        assert scheduler.pending == 0

    run(check())


def test_scheduler_cancel_is_idempotent_and_counts():
    async def check():
        scheduler = AsyncioScheduler(seed=0)
        fired = []
        handle = scheduler.schedule(0.01, fired.append, "never")
        handle.cancel()
        handle.cancel()  # second cancel is a no-op
        await asyncio.sleep(0.03)
        assert fired == []
        assert scheduler.pending == 0
        assert scheduler.events_run == 0

    run(check())


def test_scheduler_clamps_past_deadlines_instead_of_raising():
    async def check():
        scheduler = AsyncioScheduler(seed=0)
        fired = []
        # The simulator raises on negative delays; wall clock clamps,
        # because "now" has already moved by the time a follow-up
        # computed from it is scheduled.
        scheduler.schedule(-1.0, fired.append, "past")
        scheduler.schedule_at(scheduler.now - 5.0, fired.append, "way past")
        await asyncio.sleep(0.03)
        assert sorted(fired) == ["past", "way past"]

    run(check())


def test_scheduler_shutdown_cancels_everything():
    async def check():
        scheduler = AsyncioScheduler(seed=0)
        fired = []
        for _ in range(5):
            scheduler.schedule(0.01, fired.append, "x")
        assert scheduler.pending == 5
        assert scheduler.shutdown() == 5
        await asyncio.sleep(0.03)
        assert fired == []

    run(check())


def test_scheduler_seeds_named_rng_streams_deterministically():
    async def check():
        a = AsyncioScheduler(seed=42)
        b = AsyncioScheduler(seed=42)
        assert a.rngs.stream("x").random() == b.rngs.stream("x").random()

    run(check())


def test_periodic_timer_runs_on_asyncio_scheduler():
    async def check():
        scheduler = AsyncioScheduler(seed=0)
        ticks = []
        timer = PeriodicTimer(scheduler, 0.02, lambda: ticks.append(scheduler.now))
        timer.start()
        await asyncio.sleep(0.09)
        timer.stop()
        assert not timer.running
        count = len(ticks)
        await asyncio.sleep(0.03)
        assert len(ticks) == count  # stopped means stopped
        assert count >= 2

    run(check())


# ----------------------------------------------------------------------
# UDP transport dispatch and drop accounting
# ----------------------------------------------------------------------
def test_transport_delivers_between_two_sockets():
    async def check():
        a = await AsyncioUdpTransport.open("a")
        b = await AsyncioUdpTransport.open("b")
        a.register_peer("b", b.local_address)
        received = []
        channel = b.register_peer("a", a.local_address)
        channel.on_receive = received.append
        a.send_channel("b").send(_HelloWrapper(Hello("a", 7)), 24)
        await asyncio.sleep(0.05)
        assert len(received) == 1
        assert received[0].hello == Hello("a", 7)
        a.close()
        b.close()

    run(check())


def test_transport_drops_junk_misdirected_and_unknown():
    async def check():
        node = await AsyncioUdpTransport.open("n")
        peer = await AsyncioUdpTransport.open("peer")
        node.register_peer("peer", peer.local_address)
        received = []
        node.receive_channel("peer").on_receive = received.append

        loop = asyncio.get_event_loop()
        spray, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=node.local_address
        )
        hello = _HelloWrapper(Hello("peer", 1))
        spray.sendto(b"not a datagram")                        # junk
        spray.sendto(encode_datagram("peer", "other", hello))  # misdirected
        spray.sendto(encode_datagram("mallory", "n", hello))   # unknown sender
        spray.sendto(encode_datagram("peer", "n", hello))      # valid
        await asyncio.sleep(0.05)

        assert received == [hello] or received[0].hello == hello.hello
        assert node.decode_errors == 1
        assert node.misdirected == 1
        assert node.unknown_sender == 1
        spray.close()
        node.close()
        peer.close()

    run(check())


def test_send_channel_drops_unencodable_payloads():
    async def check():
        a = await AsyncioUdpTransport.open("a")
        a.register_peer("b", ("127.0.0.1", 9))
        channel = a.send_channel("b")
        channel.send(object(), 100)  # not wire-encodable: counted, not raised
        assert channel.encode_errors == 1
        assert a.encode_errors == 1
        a.close()

    run(check())


def test_receive_channel_refuses_to_send():
    async def check():
        a = await AsyncioUdpTransport.open("a")
        a.register_peer("b", ("127.0.0.1", 9))
        with pytest.raises(LiveRuntimeError):
            a.receive_channel("b").send(object(), 1)
        with pytest.raises(LiveRuntimeError):
            a.send_channel("missing")
        a.close()

    run(check())


# ----------------------------------------------------------------------
# Live deployment end to end
# ----------------------------------------------------------------------
def test_live_config_validation():
    with pytest.raises(ConfigurationError):
        LiveConfig(nodes=1)
    with pytest.raises(ConfigurationError):
        LiveConfig(duration=0)
    with pytest.raises(ConfigurationError):
        LiveConfig(rate_msgs_per_sec=0)


def test_live_topology_shapes():
    assert live_topology(3).edge_count == 3  # clique
    ring = live_topology(8)                  # ring + chord offsets 2 and 3
    assert ring.edge_count == 24
    assert all(ring.degree(node) >= 4 for node in ring.nodes)
    for n in (2, 5, 9):
        assert live_topology(n).is_connected()


def test_live_deployment_delivers_both_semantics():
    report = run_live(
        LiveConfig(nodes=4, duration=1.2, seed=3, rate_msgs_per_sec=30.0)
    )
    assert not report.runtime_errors, report.runtime_errors
    assert not report.interrupted
    semantics = {flow.semantics for flow in report.flows}
    assert semantics == {Semantics.PRIORITY.value, Semantics.RELIABLE.value}
    assert all(flow.sent > 0 for flow in report.flows)
    # Localhost, no loss, generous drain: everything should arrive.
    assert report.delivery_ratio == 1.0
    assert report.transport["decode_errors"] == 0
    assert report.transport["encode_errors"] == 0
    assert report.transport["misdirected"] == 0
    # The report serializes (this is what --output and CI consume).
    as_dict = report.to_dict()
    assert as_dict["nodes"] == 4
    assert len(as_dict["per_node"]) == 4
    assert as_dict["delivery_ratio"] == 1.0


def test_live_deployment_collects_per_node_telemetry():
    report = run_live(
        LiveConfig(nodes=2, duration=0.8, seed=1, rate_msgs_per_sec=10.0)
    )
    for snapshot in report.per_node.values():
        assert "counters" in snapshot
    # Each node owns its own registry: the transport counters must be
    # present on every node, not aggregated into one.
    rx = [
        snapshot["counters"].get("live.rx.datagrams", 0)
        for snapshot in report.per_node.values()
    ]
    assert all(count > 0 for count in rx)


def test_live_deployment_double_start_rejected():
    async def check():
        deployment = LiveDeployment(LiveConfig(nodes=2, duration=1.0))
        await deployment.start()
        try:
            with pytest.raises(LiveRuntimeError):
                await deployment.start()
        finally:
            await deployment.stop()
        # stop() is idempotent.
        await deployment.stop()

    run(check())


def test_live_start_partial_failure_closes_opened_sockets(monkeypatch):
    # If the third node's bind fails, the two sockets already bound must
    # be closed before the error propagates — a failed boot never leaks.
    async def check():
        opened = []
        real_open = AsyncioUdpTransport.open.__func__

        async def flaky_open(cls, node_id, **kwargs):
            if len(opened) == 2:
                raise OSError("bind failed")
            transport = await real_open(cls, node_id, **kwargs)
            opened.append(transport)
            return transport

        monkeypatch.setattr(AsyncioUdpTransport, "open", classmethod(flaky_open))
        deployment = LiveDeployment(LiveConfig(nodes=3, duration=1.0))
        with pytest.raises(OSError, match="bind failed"):
            await deployment.start()
        assert len(opened) == 2
        assert all(transport.closed for transport in opened)
        # stop() after the failed start stays a safe no-op.
        await deployment.stop()

    run(check())


def test_poisoned_receive_handler_is_attributed_and_fails_the_run():
    # A receive handler that raises must not kill the event loop; the
    # error is charged to the owning node and the run is marked failed —
    # delivery numbers from a node that throws on receive prove nothing.
    async def check():
        deployment = LiveDeployment(
            LiveConfig(nodes=2, duration=0.8, seed=2, rate_msgs_per_sec=30.0)
        )
        await deployment.start()

        def poisoned(packet):
            raise RuntimeError("poisoned handler")

        deployment.processes[1].transport.receive_channel(2).on_receive = poisoned
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        report = deployment.report()
        assert report.failed
        assert not report.ok
        assert any("receive dispatch failed" in e for e in report.runtime_errors)
        assert any("node 1" in e for e in report.runtime_errors)
        assert report.transport["dispatch_errors"] >= 1
        snapshot = deployment.processes[1].snapshot()
        assert snapshot["counters"].get("live.loop.exceptions", 0) >= 1

    run(check())
