"""Unit tests for chaos schedule generation (repro.faults.schedule)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.schedule import FAULT_KINDS, ChaosSpec, Fault, FaultSchedule
from repro.topology.generators import chordal_ring, clique


def spec(duration=120.0, **kwargs):
    defaults = dict(
        flap_rate=0.05, gray_rate=0.04, burst_rate=0.03,
        crash_rate=0.02, churn_rate=0.02, partition_rate=0.01,
        noise_rate=0.03,
    )
    defaults.update(kwargs)
    return ChaosSpec(duration=duration, **defaults)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        topo = chordal_ring(10)
        one = spec().generate(topo, seed=42)
        two = spec().generate(topo, seed=42)
        assert one.describe() == two.describe()
        assert one.faults == two.faults

    def test_different_seeds_differ(self):
        topo = chordal_ring(10)
        one = spec().generate(topo, seed=1)
        two = spec().generate(topo, seed=2)
        assert one.describe() != two.describe()

    def test_families_draw_from_independent_streams(self):
        # Disabling one family must not perturb another's draws.
        topo = chordal_ring(10)
        full = spec().generate(topo, seed=7)
        crashes_only = spec(
            flap_rate=0.0, gray_rate=0.0, burst_rate=0.0,
            churn_rate=0.0, partition_rate=0.0, noise_rate=0.0,
        ).generate(topo, seed=7)
        assert crashes_only.only("crash").faults == full.only("crash").faults

    def test_rebuilt_topology_same_schedule(self):
        one = spec().generate(chordal_ring(10), seed=3)
        two = spec().generate(chordal_ring(10), seed=3)
        assert one.describe() == two.describe()


class TestScheduleContents:
    def test_faults_sorted_by_start(self):
        schedule = spec().generate(chordal_ring(10), seed=5)
        starts = [f.start for f in schedule]
        assert starts == sorted(starts)

    def test_all_starts_within_duration(self):
        schedule = spec(duration=60.0).generate(chordal_ring(10), seed=5)
        assert all(0 <= f.start < 60.0 for f in schedule)
        assert all(f.duration >= 0 for f in schedule)

    def test_link_faults_target_real_edges(self):
        topo = chordal_ring(10)
        schedule = spec().generate(topo, seed=5)
        for fault in schedule:
            if fault.kind in ("flap", "gray", "noise"):
                assert topo.has_edge(*fault.target)
            elif fault.kind != "partition":
                assert topo.has_node(fault.target[0])

    def test_counts_cover_all_kinds(self):
        schedule = spec(duration=600.0).generate(chordal_ring(10), seed=5)
        counts = schedule.counts()
        assert set(counts) == set(FAULT_KINDS)
        assert sum(counts.values()) == len(schedule)
        # At these rates over 10 minutes every family should appear.
        assert all(counts[k] > 0 for k in FAULT_KINDS)

    def test_zero_rates_empty_schedule(self):
        schedule = ChaosSpec(duration=100.0).generate(chordal_ring(10), seed=5)
        assert len(schedule) == 0
        assert schedule.describe().startswith("# chaos schedule")

    def test_fault_param_lookup(self):
        fault = Fault(1.0, "gray", ("a", "b"), 2.0,
                      params=(("extra_loss", 0.5),))
        assert fault.param("extra_loss") == 0.5
        assert fault.param("missing", 9.0) == 9.0
        assert fault.end == 3.0


class TestShrinking:
    def test_without_removes_one_fault(self):
        schedule = spec().generate(chordal_ring(10), seed=5)
        assert len(schedule) > 2
        smaller = schedule.without(0)
        assert len(smaller) == len(schedule) - 1
        assert smaller.faults == schedule.faults[1:]

    def test_between_filters_window(self):
        schedule = spec().generate(chordal_ring(10), seed=5)
        window = schedule.between(10.0, 50.0)
        assert all(10.0 <= f.start < 50.0 for f in window)

    def test_only_filters_kinds(self):
        schedule = spec().generate(chordal_ring(10), seed=5)
        flaps = schedule.only("flap")
        assert all(f.kind == "flap" for f in flaps)
        assert len(flaps) == schedule.counts()["flap"]

    def test_merge_is_sorted_union(self):
        topo = chordal_ring(10)
        a = spec(gray_rate=0, burst_rate=0, crash_rate=0, churn_rate=0,
                 partition_rate=0, noise_rate=0).generate(topo, seed=5)
        b = spec(flap_rate=0, burst_rate=0, gray_rate=0, churn_rate=0,
                 partition_rate=0, noise_rate=0).generate(topo, seed=5)
        merged = a.merge(b)
        assert len(merged) == len(a) + len(b)
        starts = [f.start for f in merged]
        assert starts == sorted(starts)


class TestPresetsAndValidation:
    def test_link_level_preset_has_no_node_faults(self):
        preset = ChaosSpec.link_level(duration=300.0, intensity=2.0)
        schedule = preset.generate(chordal_ring(10), seed=1)
        assert all(f.kind in ("flap", "gray", "burst") for f in schedule)

    def test_full_preset_enables_every_family(self):
        preset = ChaosSpec.full(duration=60.0)
        assert preset.crash_rate > 0 and preset.partition_rate > 0

    def test_live_soak_preset_generates_wire_noise(self):
        preset = ChaosSpec.live_soak(duration=600.0)
        schedule = preset.generate(chordal_ring(6), seed=3)
        counts = schedule.counts()
        assert counts["noise"] > 0
        assert counts["crash"] > 0
        for fault in schedule.only("noise"):
            assert set(dict(fault.params)) == {
                "corrupt", "dup", "extra_delay", "extra_loss", "reorder"
            }
            assert all(0.0 <= value <= 1.0 for _, value in fault.params)

    def test_noise_params_respect_bounds(self):
        generated = spec(duration=600.0, noise_rate=0.1).generate(
            chordal_ring(8), seed=11
        )
        reference = ChaosSpec(duration=600.0)
        for fault in generated.only("noise"):
            assert reference.noise_loss[0] <= fault.param("extra_loss") \
                <= reference.noise_loss[1]
            assert reference.noise_dup[0] <= fault.param("dup") \
                <= reference.noise_dup[1]
            assert reference.noise_reorder[0] <= fault.param("reorder") \
                <= reference.noise_reorder[1]

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(duration=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(duration=10.0, flap_rate=-1.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(duration=10.0, flap_downtime=(5.0, 1.0))

    def test_partition_sides_are_proper_subsets(self):
        topo = clique(6)
        schedule = spec(duration=2000.0).generate(topo, seed=9)
        for fault in schedule.only("partition"):
            assert 0 < len(fault.target) < len(topo.nodes)

    def test_empty_schedule_roundtrip(self):
        empty = FaultSchedule(seed=0, duration=10.0)
        assert list(empty) == []
        assert empty.counts() == {k: 0 for k in FAULT_KINDS}
