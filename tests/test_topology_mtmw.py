"""Unit tests for the Maximal Topology with Minimal Weights."""

import pytest

from repro.crypto.pki import Pki
from repro.errors import TopologyError
from repro.topology.generators import ring
from repro.topology.mtmw import Mtmw, MtmwHolder, MtmwUpdateResult


@pytest.fixture
def pki():
    return Pki(seed=1)


@pytest.fixture
def mtmw(pki):
    return Mtmw.create(ring(5, weight=0.010), pki, seqno=1)


class TestCreateVerify:
    def test_created_mtmw_verifies(self, pki, mtmw):
        assert mtmw.verify(pki)

    def test_tampered_topology_fails_verification(self, pki, mtmw):
        mtmw._topology.set_weight(1, 2, 0.001)
        assert not mtmw.verify(pki)

    def test_tampered_seqno_fails_verification(self, pki, mtmw):
        mtmw.seqno = 99
        assert not mtmw.verify(pki)

    def test_foreign_admin_rejected(self, mtmw):
        other_pki = Pki(seed=2)
        assert not mtmw.verify(other_pki)

    def test_non_admin_signature_rejected(self, pki):
        topo = ring(5)
        pki.register(1)
        forged = Mtmw(
            topo, 1, pki.identity(1).sign(Mtmw.signed_fields(topo, 1))
        )
        assert not forged.verify(pki)

    def test_invalid_seqno_rejected(self, pki):
        with pytest.raises(TopologyError):
            Mtmw.create(ring(5), pki, seqno=0)

    def test_mtmw_snapshot_is_independent(self, pki):
        topo = ring(5)
        mtmw = Mtmw.create(topo, pki)
        topo.set_weight(1, 2, 99.0)
        assert mtmw.min_weight(1, 2) == 0.010


class TestQueries:
    def test_membership(self, mtmw):
        assert mtmw.is_member(1)
        assert not mtmw.is_member(99)
        assert sorted(mtmw.members) == [1, 2, 3, 4, 5]

    def test_edges_and_neighbors(self, mtmw):
        assert mtmw.is_edge(1, 2)
        assert not mtmw.is_edge(1, 3)
        assert mtmw.are_neighbors(5, 1)
        assert sorted(mtmw.neighbors(1)) == [2, 5]

    def test_min_weight(self, mtmw):
        assert mtmw.min_weight(1, 2) == 0.010
        assert mtmw.min_weight(2, 1) == 0.010
        with pytest.raises(TopologyError):
            mtmw.min_weight(1, 3)


class TestHolderReplayProtection:
    def test_initial_must_verify(self, pki, mtmw):
        holder = MtmwHolder(pki, mtmw)
        assert holder.current is mtmw
        bad = Mtmw(ring(5), 1, signature="junk")
        with pytest.raises(TopologyError):
            MtmwHolder(pki, bad)

    def test_accepts_fresh_update(self, pki, mtmw):
        holder = MtmwHolder(pki, mtmw)
        new = mtmw.successor(ring(6), pki)
        assert holder.consider(new) is MtmwUpdateResult.ACCEPTED
        assert holder.current is new
        assert holder.current.seqno == 2

    def test_rejects_replayed_old_mtmw(self, pki, mtmw):
        holder = MtmwHolder(pki, mtmw)
        new = mtmw.successor(ring(6), pki)
        holder.consider(new)
        # An attacker replays the original (validly signed) MTMW.
        assert holder.consider(mtmw) is MtmwUpdateResult.STALE
        assert holder.current is new

    def test_rejects_same_seqno(self, pki, mtmw):
        holder = MtmwHolder(pki, mtmw)
        same = Mtmw.create(ring(6), pki, seqno=1)
        assert holder.consider(same) is MtmwUpdateResult.STALE

    def test_rejects_bad_signature(self, pki, mtmw):
        holder = MtmwHolder(pki, mtmw)
        forged = Mtmw(ring(6), 2, signature="junk")
        assert holder.consider(forged) is MtmwUpdateResult.BAD_SIGNATURE
        assert holder.current is mtmw

    def test_skipping_seqnos_is_allowed(self, pki, mtmw):
        """A node that missed MTMW #2 must still accept #3."""
        holder = MtmwHolder(pki, mtmw)
        v3 = Mtmw.create(ring(6), pki, seqno=3)
        assert holder.consider(v3) is MtmwUpdateResult.ACCEPTED
