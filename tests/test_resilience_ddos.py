"""Unit tests for the rotating link-flooding attack (resilience/ddos.py).

The attack model is what Figure 2 is built on: flood one route
combination per targeted link at a time, rotating faster than Internet
routing reacts.  Single-homed links die outright; multihomed links
survive any attacker whose breadth is below the combination count.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import multihomed, single_homed
from repro.topology import generators


def _net():
    return OverlayNetwork.build(generators.clique(3), OverlayConfig(), seed=1)


def _single_homed_underlay(net):
    return single_homed(net, {node: "isp1" for node in net.topology.nodes})


def _multihomed_underlay(net):
    return multihomed(net, {node: ["isp1", "isp2"] for node in net.topology.nodes})


def test_constructor_validates_parameters():
    net = _net()
    underlay = _single_homed_underlay(net)
    with pytest.raises(ConfigurationError):
        RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.0)
    with pytest.raises(ConfigurationError):
        RotatingLinkAttack(net.sim, underlay, [(1, 2)], breadth=0)


def test_single_homed_target_is_continuously_dead():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5)
    attack.start()
    # A single-homed link has exactly one combination: every rotation
    # re-floods it, so the link never comes back while the attack runs.
    for _ in range(4):
        net.sim.run(until=net.sim.now + 0.5)
        assert not underlay.link_usable(1, 2)
    # Untargeted links are untouched.
    assert underlay.link_usable(1, 3)
    assert underlay.link_usable(2, 3)


def test_multihomed_target_survives_narrow_attacker():
    net = _net()
    underlay = _multihomed_underlay(net)
    assert len(underlay.combos(1, 2)) == 4
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5, breadth=1)
    attack.start()
    flooded_over_time = set()
    for _ in range(8):
        assert underlay.link_usable(1, 2)  # 3 of 4 combos always up
        flooded_over_time.update(combo for _, _, combo in attack._flooded)
        net.sim.run(until=net.sim.now + 0.5)
    # The attack really rotates: over 8 periods it cycled through every
    # combination, not just re-flooded one.
    assert flooded_over_time == set(underlay.combos(1, 2))


def test_multihomed_target_dies_when_breadth_covers_all_combos():
    net = _net()
    underlay = _multihomed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5, breadth=4)
    attack.start()
    for _ in range(3):
        assert not underlay.link_usable(1, 2)
        net.sim.run(until=net.sim.now + 0.5)


def test_stop_releases_every_flooded_combination():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2), (2, 3)], rotation_period=0.5)
    attack.start()
    assert not underlay.link_usable(1, 2)
    assert not underlay.link_usable(2, 3)
    attack.stop()
    assert underlay.link_usable(1, 2)
    assert underlay.link_usable(2, 3)
    assert attack._flooded == []
    # A stopped attack schedules no further rotations.
    net.sim.run(until=net.sim.now + 2.0)
    assert underlay.link_usable(1, 2)


def test_schedule_arms_start_and_stop_times():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.25)
    attack.schedule(start_at=1.0, duration=2.0)
    net.sim.run(until=0.9)
    assert underlay.link_usable(1, 2)
    net.sim.run(until=1.1)
    assert attack.active
    assert not underlay.link_usable(1, 2)
    net.sim.run(until=3.1)
    assert not attack.active
    assert underlay.link_usable(1, 2)
