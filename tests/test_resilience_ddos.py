"""Unit tests for the rotating link-flooding attack (resilience/ddos.py).

The attack model is what Figure 2 is built on: flood one route
combination per targeted link at a time, rotating faster than Internet
routing reacts.  Single-homed links die outright; multihomed links
survive any attacker whose breadth is below the combination count.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import multihomed, single_homed
from repro.topology import generators


def _net():
    return OverlayNetwork.build(generators.clique(3), OverlayConfig(), seed=1)


def _single_homed_underlay(net):
    return single_homed(net, {node: "isp1" for node in net.topology.nodes})


def _multihomed_underlay(net):
    return multihomed(net, {node: ["isp1", "isp2"] for node in net.topology.nodes})


def test_constructor_validates_parameters():
    net = _net()
    underlay = _single_homed_underlay(net)
    with pytest.raises(ConfigurationError):
        RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.0)
    with pytest.raises(ConfigurationError):
        RotatingLinkAttack(net.sim, underlay, [(1, 2)], breadth=0)


def test_single_homed_target_is_continuously_dead():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5)
    attack.start()
    # A single-homed link has exactly one combination: every rotation
    # re-floods it, so the link never comes back while the attack runs.
    for _ in range(4):
        net.sim.run(until=net.sim.now + 0.5)
        assert not underlay.link_usable(1, 2)
    # Untargeted links are untouched.
    assert underlay.link_usable(1, 3)
    assert underlay.link_usable(2, 3)


def test_multihomed_target_survives_narrow_attacker():
    net = _net()
    underlay = _multihomed_underlay(net)
    assert len(underlay.combos(1, 2)) == 4
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5, breadth=1)
    attack.start()
    flooded_over_time = set()
    for _ in range(8):
        assert underlay.link_usable(1, 2)  # 3 of 4 combos always up
        flooded_over_time.update(combo for _, _, combo in attack._flooded)
        net.sim.run(until=net.sim.now + 0.5)
    # The attack really rotates: over 8 periods it cycled through every
    # combination, not just re-flooded one.
    assert flooded_over_time == set(underlay.combos(1, 2))


def test_multihomed_target_dies_when_breadth_covers_all_combos():
    net = _net()
    underlay = _multihomed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5, breadth=4)
    attack.start()
    for _ in range(3):
        assert not underlay.link_usable(1, 2)
        net.sim.run(until=net.sim.now + 0.5)


def test_stop_releases_every_flooded_combination():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2), (2, 3)], rotation_period=0.5)
    attack.start()
    assert not underlay.link_usable(1, 2)
    assert not underlay.link_usable(2, 3)
    attack.stop()
    assert underlay.link_usable(1, 2)
    assert underlay.link_usable(2, 3)
    assert attack._flooded == []
    # A stopped attack schedules no further rotations.
    net.sim.run(until=net.sim.now + 2.0)
    assert underlay.link_usable(1, 2)


def test_schedule_arms_start_and_stop_times():
    net = _net()
    underlay = _single_homed_underlay(net)
    attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.25)
    attack.schedule(start_at=1.0, duration=2.0)
    net.sim.run(until=0.9)
    assert underlay.link_usable(1, 2)
    net.sim.run(until=1.1)
    assert attack.active
    assert not underlay.link_usable(1, 2)
    net.sim.run(until=3.1)
    assert not attack.active
    assert underlay.link_usable(1, 2)


# ----------------------------------------------------------------------
# Client-tier admission floods (application-layer DoS)
# ----------------------------------------------------------------------
class TestAdmissionFlood:
    """A Byzantine client population hammering one node's admission
    stage: the reject watermark must engage, but a conforming honest
    client below the per-source floor must never lose an offer."""

    @staticmethod
    def _flood_net():
        from repro.messaging.admission import AdmissionConfig

        config = OverlayConfig(
            link_bandwidth_bps=2e5,
            priority_queue_capacity=50,
            admission=AdmissionConfig(
                capacity_rate=400.0,
                floor_min=4.0,
                floor_max=100.0,
                burst_tokens=8.0,
                park_capacity=32,
                park_timeout=0.5,
            ),
        )
        return OverlayNetwork.build(
            generators.chordal_ring(6, chords=2, weight=0.001), config, seed=1
        )

    @staticmethod
    def _periodic(sim, interval, fn, until):
        def tick():
            if sim.now >= until:
                return
            fn()
            sim.schedule(interval, tick)

        sim.schedule(0.0, tick)

    def test_burst_flood_hits_reject_watermark_without_starving_honest(self):
        from repro.messaging.admission import AdmissionState

        net = self._flood_net()
        node = net.node(1)
        states_seen = set()
        attacker_outcomes = {"admitted": 0, "parked": 0, "rejected": 0}
        honest_outcomes = {"admitted": 0, "parked": 0, "rejected": 0}
        attack_round = [0]

        def flood():
            # 40 offers per 10 ms across a rotating attacker population.
            attack_round[0] += 1
            for index in range(40):
                client = f"1/attacker-{index % 20}"
                outcome = node.offer_priority(
                    4, size_bytes=200, priority=9, client=client
                )
                attacker_outcomes[outcome.value] += 1
            states_seen.add(node.admission.state)

        def honest():
            # Conforming: one offer per 300 ms << floor_min (4/s).
            outcome = node.offer_priority(
                3, size_bytes=200, priority=2, client="1/honest"
            )
            honest_outcomes[outcome.value] += 1

        self._periodic(net.sim, 0.010, flood, until=4.0)
        self._periodic(net.sim, 0.300, honest, until=4.0)
        net.sim.run(until=6.0)

        # The flood drove the load signal through the reject watermark...
        assert AdmissionState.REJECT in states_seen
        assert attacker_outcomes["rejected"] > 0
        # ...and throttled the attackers hard (most offers not admitted).
        attacker_total = sum(attacker_outcomes.values())
        assert attacker_outcomes["admitted"] < attacker_total * 0.5
        # The honest conforming source lost nothing.
        assert honest_outcomes["rejected"] == 0
        assert honest_outcomes["parked"] == 0
        assert honest_outcomes["admitted"] == sum(honest_outcomes.values()) > 0

    def test_sybil_forged_source_ids_are_bounded_per_id(self):
        net = self._flood_net()
        node = net.node(1)
        config = node.admission.config
        per_sybil_admitted = []

        def sybil_wave():
            # Each wave mints a fresh forged identity and bursts 20
            # offers through it — the classic meter-evasion move.
            sybil = f"1/sybil-{len(per_sybil_admitted)}"
            admitted = 0
            for _ in range(20):
                outcome = node.offer_priority(
                    4, size_bytes=200, priority=9, client=sybil
                )
                if outcome.value == "admitted":
                    admitted += 1
            per_sybil_admitted.append(admitted)

        self._periodic(net.sim, 0.050, sybil_wave, until=3.0)
        net.sim.run(until=5.0)

        assert len(per_sybil_admitted) >= 50
        # A forged id buys at most one full initial bucket, never more:
        # the flood is bounded per identity even though ids are free.
        assert max(per_sybil_admitted) <= int(config.burst_tokens) + 1
        # And enough pressure built up that later offers were refused.
        assert node.admission.rejected > 0

    def test_conservation_holds_on_every_node_after_flood(self):
        net = self._flood_net()
        node = net.node(1)

        def flood():
            for index in range(30):
                node.offer_priority(
                    4, size_bytes=200, priority=9, client=f"1/a{index % 10}"
                )

        self._periodic(net.sim, 0.010, flood, until=2.0)
        net.sim.run(until=4.0)
        for overlay in net.nodes.values():
            offered, accounted = overlay.admission.balance()
            assert offered == accounted
