"""Unit tests for Reliable Messaging internals (engine-level, small nets)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.messaging.message import E2eAck, Message, NeighborAck, Semantics
from repro.messaging.reliable import FlowState, ReliableLinkState, _Cursor
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import line, ring


def rmsg(seq, source=1, dest=3, size=500):
    return Message(
        source=source, dest=dest, seq=seq,
        semantics=Semantics.RELIABLE, size_bytes=size,
    )


class TestFlowState:
    def test_apply_e2e_frees_prefix(self):
        state = FlowState()
        for seq in (1, 2, 3, 4):
            state.stored[seq] = rmsg(seq)
            state.stored_at[seq] = 0.0
            state.stored_h = seq
        assert state.apply_e2e(2)
        assert sorted(state.stored) == [3, 4]
        assert state.acked == 2
        assert state.buffer_used() == 2

    def test_apply_e2e_idempotent_and_monotone(self):
        state = FlowState()
        state.stored_h = 5
        assert state.apply_e2e(3)
        assert not state.apply_e2e(3)
        assert not state.apply_e2e(1)
        assert state.acked == 3

    def test_skip_forward_past_stored_h(self):
        """An E2E ack beyond what we stored means the network already
        delivered those messages: skip forward and drop everything."""
        state = FlowState()
        state.stored[1] = rmsg(1)
        state.stored_at[1] = 0.0
        state.stored_h = 1
        assert state.apply_e2e(10)
        assert state.stored == {}
        assert state.stored_h == state.acked == 10

    @given(st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=30))
    def test_property_invariant_stored_range(self, acks):
        state = FlowState()
        for seq in range(1, 41):
            state.stored[seq] = rmsg(seq)
            state.stored_at[seq] = 0.0
            state.stored_h = seq
        for ack in acks:
            state.apply_e2e(ack)
            assert state.acked <= state.stored_h
            assert all(state.acked < s <= state.stored_h for s in state.stored)


class TestLinkState:
    def test_cursor_defaults(self):
        link_state = ReliableLinkState(default_limit=8)
        cursor = link_state.cursor((1, 3))
        assert cursor.nbr_limit == 8
        assert cursor.sent_h == cursor.nbr_h == 0
        assert not cursor.primary

    def test_next_needed_uses_all_floors(self):
        link_state = ReliableLinkState(default_limit=64)
        state = FlowState()
        state.acked = 5
        cursor = link_state.cursor((1, 3))
        assert link_state.next_needed((1, 3), state) == 6
        cursor.sent_h = 9
        assert link_state.next_needed((1, 3), state) == 10
        cursor.nbr_h = 12
        assert link_state.next_needed((1, 3), state) == 13


def build_pair(**config_kwargs):
    """1 - 2 - 3 line, paced links."""
    defaults = dict(link_bandwidth_bps=1e6)
    defaults.update(config_kwargs)
    net = OverlayNetwork.build(line(3), OverlayConfig(**defaults))
    return net


class TestEnginePaths:
    def test_gap_drop_counted(self):
        net = build_pair()
        engine = net.node(2).reliable
        engine.handle(rmsg(5).sign(net.pki), from_neighbor=1)
        assert engine.gap_drops == 1
        assert engine.flows[(1, 3)].stored_h == 0

    def test_duplicate_drop_counted(self):
        net = build_pair()
        engine = net.node(2).reliable
        engine.handle(rmsg(1).sign(net.pki), from_neighbor=1)
        engine.handle(rmsg(1).sign(net.pki), from_neighbor=1)
        assert engine.duplicates_dropped == 1

    def test_backpressure_drop_at_intermediate(self):
        net = build_pair(reliable_buffer=2)
        engine = net.node(2).reliable
        for seq in (1, 2, 3):
            engine.handle(rmsg(seq).sign(net.pki), from_neighbor=1)
        assert engine.backpressure_drops == 1
        assert engine.flows[(1, 3)].stored_h == 2

    def test_destination_delivers_without_buffer_limit(self):
        net = build_pair(reliable_buffer=2)
        engine = net.node(3).reliable
        for seq in range(1, 11):
            engine.handle(rmsg(seq).sign(net.pki), from_neighbor=2)
        assert engine.messages_delivered == 10
        assert engine.flows[(1, 3)].acked == 10

    def test_e2e_ack_generation_requires_progress(self):
        net = build_pair()
        engine = net.node(3).reliable
        engine.generate_e2e_ack()
        assert engine.acks_generated == 0
        engine.handle(rmsg(1).sign(net.pki), from_neighbor=2)
        engine.generate_e2e_ack()
        assert engine.acks_generated == 1
        engine.generate_e2e_ack()  # no new progress
        assert engine.acks_generated == 1

    def test_no_progress_ack_not_forwarded(self):
        net = build_pair()
        engine = net.node(2).reliable
        ack1 = E2eAck.create(net.pki, 3, stamp=1, by_source={1: 5})
        engine.handle_e2e_ack(ack1, from_neighbor=3)
        rejected_before = engine.acks_rejected
        engine.handle_e2e_ack(ack1, from_neighbor=3)  # exact duplicate
        assert engine.acks_rejected == rejected_before + 1

    def test_neighbor_ack_updates_cursor_and_limit(self):
        net = build_pair()
        node2 = net.node(2)
        engine = node2.reliable
        engine.handle(rmsg(1).sign(net.pki), from_neighbor=1)
        ack = NeighborAck(3, ((("1", "3"), 1, 65),))
        engine.handle_neighbor_ack(ack, from_neighbor=3)
        cursor = node2.links[3].reliable.cursor((1, 3))
        assert cursor.nbr_h == 1
        assert cursor.nbr_limit == 65

    def test_flow_state_initialized_from_latest_ack(self):
        """A node that saw an E2E ack before any data skips the prefix."""
        net = build_pair()
        engine = net.node(2).reliable
        ack = E2eAck.create(net.pki, 3, stamp=1, by_source={1: 7})
        engine.handle_e2e_ack(ack, from_neighbor=3)
        state = engine.flow_state((1, 3))
        assert state.acked == 7
        assert state.stored_h == 7

    def test_check_stalls_rewinds_after_timeout(self):
        """A cursor ahead of the neighbor with no progress is rewound by
        the stall check, and the message actually gets retransmitted."""
        net = build_pair(reliable_stall_timeout=1.0)
        node2 = net.node(2)
        cursor = node2.links[3].reliable.cursor((1, 3))
        state = node2.reliable.flow_state((1, 3))
        state.stored[1] = rmsg(1).sign(net.pki)
        state.stored_at[1] = 0.0
        state.stored_h = 1
        cursor.sent_h = 1  # claims sent, but nothing ever went out
        cursor.nbr_progress_at = 0.0
        net.run(3.0)  # hello ticks invoke check_stalls
        # The rewind re-sent the message; the destination delivered it
        # and its neighbor ACK proves receipt.
        assert node2.links[3].data_transmissions >= 1
        assert cursor.nbr_h == 1
        assert net.node(3).reliable.messages_delivered == 1

    def test_source_seq_assignment_is_consecutive(self):
        net = build_pair()
        node = net.node(1)
        assert node.reliable.next_seq(3) == 1
        assert node.send_reliable(3)
        assert node.reliable.next_seq(3) == 2
        assert node.send_reliable(3)
        assert node.reliable.next_seq(3) == 3


class TestPrimaryRepairDesignation:
    def test_primary_is_shortest_path_next_hop(self):
        net = OverlayNetwork.build(ring(4), OverlayConfig(link_bandwidth_bps=1e6))
        node1 = net.node(1)
        node1.send_reliable(2)  # direct neighbor: link 1->2 is primary
        assert node1.links[2].reliable.cursor((1, 2)).primary
        assert not node1.links[4].reliable.cursor((1, 2)).primary

    def test_kpaths_links_always_eager(self):
        from repro.overlay.config import DisseminationMethod

        net = OverlayNetwork.build(ring(4), OverlayConfig(link_bandwidth_bps=1e6))
        node1 = net.node(1)
        node1.send_reliable(3, method=DisseminationMethod.k_paths(2))
        assert node1.links[2].reliable.cursor((1, 3)).primary
        assert node1.links[4].reliable.cursor((1, 3)).primary
