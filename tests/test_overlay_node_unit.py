"""Unit tests for OverlayNode internals: dispatch, guards, CPU model."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.messaging.message import Hello, Message, Semantics
from repro.overlay.config import CryptoMode, DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.sim.cpu import CpuCosts
from repro.topology.generators import line, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


class TestWiring:
    def test_attach_link_requires_mtmw_neighbors(self):
        net = OverlayNetwork.build(ring(4), FAST)
        node = net.node(1)
        with pytest.raises(ConfigurationError):
            node.attach_link(3, node.links[2].por)  # 1 and 3 not adjacent

    def test_links_match_topology(self):
        net = OverlayNetwork.build(ring(5), FAST)
        for node_id, node in net.nodes.items():
            assert sorted(map(str, node.links)) == sorted(
                map(str, net.topology.neighbors(node_id))
            )

    def test_unknown_node_lookup(self):
        from repro.errors import TopologyError

        net = OverlayNetwork.build(ring(4), FAST)
        with pytest.raises(TopologyError):
            net.node(99)


class TestSendValidation:
    def test_send_priority_assigns_increasing_seqs(self):
        net = OverlayNetwork.build(ring(4), FAST)
        m1 = net.node(1).send_priority(3)
        m2 = net.node(1).send_priority(3)
        assert m2.seq == m1.seq + 1

    def test_send_uses_config_defaults(self):
        config = OverlayConfig(
            link_bandwidth_bps=None, default_priority=7, default_expire_after=3.0
        )
        net = OverlayNetwork.build(ring(4), config)
        message = net.node(1).send_priority(3)
        assert message.priority == 7
        assert message.expiration == pytest.approx(3.0)

    def test_kpaths_degrade_gracefully_when_fewer_exist(self):
        """Requesting K=2 on a line yields the single existing path."""
        net = OverlayNetwork.build(line(3), FAST)
        message = net.node(1).send_priority(3, method=DisseminationMethod.k_paths(2))
        assert message.paths == ((1, 2, 3),)

    def test_unreachable_destination_raises(self):
        from repro.topology.graph import Topology

        topo = Topology()
        topo.add_edge(1, 2, 0.01)
        topo.add_node(3)  # isolated
        net = OverlayNetwork.build(topo, FAST)
        with pytest.raises(ProtocolError):
            net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))

    def test_messages_are_signed_at_source(self):
        net = OverlayNetwork.build(ring(4), FAST)
        message = net.node(1).send_priority(3)
        assert message.verify(net.pki)


class TestCrashGuards:
    def test_crashed_node_ignores_everything(self):
        net = OverlayNetwork.build(ring(4), FAST)
        net.node(1).send_priority(3)
        net.crash(2)
        net.crash(4)
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0

    def test_crash_clears_soft_state(self):
        net = OverlayNetwork.build(ring(4), FAST)
        node = net.node(2)
        node.send_reliable(3)
        assert node.reliable.flows
        net.crash(2)
        assert not node.reliable.flows
        assert len(node.metadata) == 0

    def test_recover_requests_state(self):
        net = OverlayNetwork.build(ring(4), OverlayConfig(link_bandwidth_bps=1e6))
        net.crash(2)
        net.run(1.0)
        net.recover(2)
        net.run(1.0)
        assert not net.node(2).crashed


class TestCpuModel:
    def test_crypto_costs_delay_delivery(self):
        slow = OverlayConfig(
            link_bandwidth_bps=None,
            cpu_costs=CpuCosts(
                rsa_sign=0.010, rsa_verify=0.010, hmac=0.0,
                process_packet=0.010, tx_packet=0.0, duplicate_packet=0.001,
            ),
        )
        net_slow = OverlayNetwork.build(line(3), slow)
        net_fast = OverlayNetwork.build(line(3), FAST)
        for net in (net_slow, net_fast):
            net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
            net.run(2.0)
        slow_lat = net_slow.flow_latency(1, 3).mean()
        fast_lat = net_fast.flow_latency(1, 3).mean()
        # sign + 2x (process + verify) ~ 50 ms slower.
        assert slow_lat > fast_lat + 0.040

    def test_overload_drops_priority_data(self):
        config = OverlayConfig(
            link_bandwidth_bps=1e6,
            cpu_costs=CpuCosts(
                rsa_sign=0.0, rsa_verify=0.0, hmac=0.0,
                process_packet=0.050, tx_packet=0.0, duplicate_packet=0.001,
            ),
            cpu_drop_backlog=0.05,
        )
        net = OverlayNetwork.build(line(3), config)
        for _ in range(50):  # far beyond 20/s CPU capacity at the next hop
            net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(5.0)
        assert net.stats.counter("cpu_overload_drops").value > 0
        assert net.delivered_count(1, 3) < 50

    def test_no_costs_means_no_cpu_events(self):
        net = OverlayNetwork.build(ring(4), FAST)
        net.node(1).send_priority(3)
        net.run(1.0)
        assert net.node(2).cpu.operations == 0


class TestLocalDeliveryStats:
    def test_goodput_and_latency_recorded(self):
        net = OverlayNetwork.build(ring(4), FAST)
        net.node(1).send_priority(3, size_bytes=1234)
        net.run(1.0)
        meter = net.flow_goodput(1, 3)
        assert meter.total_bytes == 1234
        recorder = net.flow_latency(1, 3)
        assert recorder.count == 1
        assert recorder.mean() > 0

    def test_priority_band_series(self):
        net = OverlayNetwork.build(ring(4), FAST)
        net.node(1).send_priority(3, priority=9)
        net.run(1.0)
        series = net.stats.series("priority-count:1->3:9")
        assert len(series) == 1

    def test_on_deliver_callback_sees_payload(self):
        net = OverlayNetwork.build(ring(4), FAST)
        seen = []
        net.node(3).on_deliver = lambda m: seen.append(m.payload)
        net.node(1).send_priority(3, payload={"k": 1})
        net.run(1.0)
        assert seen == [{"k": 1}]


class TestHelloMonitoring:
    def test_hellos_keep_links_up(self):
        net = OverlayNetwork.build(ring(4), OverlayConfig(link_bandwidth_bps=1e6))
        net.run(10.0)
        for node in net.nodes.values():
            for link in node.links.values():
                assert link.monitor_up

    def test_hello_from_wrong_sender_ignored(self):
        net = OverlayNetwork.build(ring(4), OverlayConfig(link_bandwidth_bps=1e6))
        link = net.node(1).links[2]
        before = link.last_heard
        net.run(0.5)
        link._on_hello(Hello(sender=99, stamp=1))  # spoofed sender id
        assert link.last_heard == before


class TestRealCryptoMode:
    def test_end_to_end_with_real_rsa(self):
        """The full overlay runs with the from-scratch RSA stack."""
        config = OverlayConfig(link_bandwidth_bps=None, crypto=CryptoMode.REAL)
        net = OverlayNetwork.build(ring(3), config, seed=2)
        net.node(1).send_priority(3)
        net.node(1).send_reliable(2)
        net.run(3.0)
        assert net.delivered_count(1, 3) == 1
        assert net.delivered_count(1, 2) == 1

    def test_real_mode_rejects_tampering(self):
        import dataclasses

        from repro.byzantine.behaviors import Behavior

        class Tamper(Behavior):
            def filter_outgoing(self, payload, neighbor, node):
                if isinstance(payload, Message):
                    return dataclasses.replace(payload, priority=10)
                return payload

        config = OverlayConfig(link_bandwidth_bps=None, crypto=CryptoMode.REAL)
        net = OverlayNetwork.build(line(3), config, seed=2)
        net.compromise(2, Tamper())
        net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0
        assert net.node(3).invalid_messages_rejected > 0
