"""In-process shard-worker tests.

The integration suite (``test_cluster_live.py``) runs workers as real
spawned OS processes — faithful, but invisible to the coverage tracer
and expensive to iterate on.  Here the *same* worker code path
(:func:`repro.cluster.worker._worker` / :class:`ShardDeployment`) runs
inside the test's own event loop against a hand-rolled coordinator
endpoint, so every control-plane branch — boot barrier, hosted and
forged JOINs, LEAVE drain, peer updates, restart announces, lost
coordinator — is exercised and traced without crossing a process
boundary.  Seed-node bootstrap discovery gets the same treatment over
real loopback UDP sockets.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Tuple

import pytest

from repro.cluster import worker as worker_mod
from repro.cluster.control import control_key, read_frame, write_frame
from repro.cluster.discovery import SeedDirectory, query_addresses
from repro.cluster.membership import (
    LEAVE,
    MembershipRecord,
    membership_key,
    next_join_record,
)
from repro.cluster.worker import ShardDeployment, _node, _worker_live_config
from repro.errors import LiveRuntimeError
from repro.overlay.config import DisseminationMethod
from repro.runtime.transport import AsyncioUdpTransport
from repro.runtime.wire import AddrAnnounce, encode_datagram
from repro.topology.generators import large_overlay

SEED = 29


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=90.0))


def _payload(
    topology,
    control_port: int,
    *,
    duration: float = 3.0,
    drain: float = 1.0,
    kpaths: int = 2,
    flow_stride: int = 2,
    seed_nodes: Dict[int, Any] | None = None,
) -> Dict[str, Any]:
    """The spawn payload the coordinator would build for a single shard
    hosting the whole topology (mirrors ``ClusterDeployment.start``)."""
    nodes = sorted(topology.nodes)
    return {
        "shard_id": 0,
        "nodes": nodes,
        "all_nodes": nodes,
        "edges": [[a, b, topology.weight(a, b)] for a, b in topology.edges()],
        "seed": SEED,
        "total_nodes": len(nodes),
        "duration": duration,
        "rate_msgs_per_sec": 5.0,
        "size_bytes": 200,
        "host": "127.0.0.1",
        "drain": drain,
        "kpaths": kpaths,
        "flow_stride": flow_stride,
        "chaos": None,
        "supervision": {},
        "monitor_invariants": True,
        "epoch": 0.0,
        "control_host": "127.0.0.1",
        "control_port": control_port,
        "seed_nodes": seed_nodes or {"0": nodes[0]},
        "heartbeat_interval": 0.1,
    }


class FakeCoordinator:
    """One-connection control-plane endpoint for driving a worker."""

    def __init__(self):
        self.key = control_key(SEED)
        self._accepted: asyncio.Future = asyncio.get_event_loop().create_future()
        self.server = None
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.server = await asyncio.start_server(
            self._on_connect, "127.0.0.1", 0
        )
        return self

    async def __aexit__(self, *exc):
        if self.writer is not None:
            self.writer.close()
        self.server.close()
        await self.server.wait_closed()

    @property
    def port(self) -> int:
        return self.server.sockets[0].getsockname()[1]

    def _on_connect(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._accepted.set_result(None)

    async def accept(self):
        await asyncio.wait_for(self._accepted, timeout=10.0)

    async def send(self, body: Dict[str, Any]) -> None:
        await write_frame(self.writer, self.key, body)

    async def recv(self, kind: str, timeout: float = 30.0) -> Dict[str, Any]:
        """The next frame of ``kind``, skipping heartbeats/announces."""

        async def until():
            while True:
                frame = await read_frame(self.reader, self.key)
                if frame.get("kind") == kind:
                    return frame

        return await asyncio.wait_for(until(), timeout)

    async def boot_barrier(self) -> Dict[str, Any]:
        """hello -> addr_map -> ready -> start; returns the address map."""
        hello = await self.recv("hello")
        await self.send({"kind": "addr_map", "addresses": hello["addresses"]})
        await self.recv("ready")
        await self.send({"kind": "start"})
        return hello["addresses"]


def test_worker_end_to_end_with_membership_churn():
    """The full worker lifecycle in one loop: boot barrier, traffic,
    heartbeats, a hosted JOIN (with UDP seed-node discovery), forged and
    stale JOIN rejections, a LEAVE drain, a peer update, STOP, report."""
    topo = large_overlay(8, degree=4, seed=SEED)
    nodes = sorted(topo.nodes)
    mkey = membership_key(SEED)

    async def scenario():
        async with FakeCoordinator() as coord:
            payload = _payload(topo, coord.port)
            task = asyncio.get_event_loop().create_task(
                worker_mod._worker(payload)
            )
            await coord.accept()
            addresses = await coord.boot_barrier()
            assert set(addresses) == {str(n) for n in nodes}

            # Liveness: heartbeats flow from the worker unprompted.
            beat = await coord.recv("heartbeat")
            assert beat["shard"] == 0

            # Hosted JOIN: the worker boots the joiner, resolves anchors
            # through its seed node over UDP, and acks with the address.
            join = next_join_record(
                nodes, seqno=2,
                anchors=((nodes[0], 0.01), (nodes[1], 0.01)),
            ).signed(mkey)
            await coord.send(
                {"kind": "join", "record": join.to_dict(), "host_shard": 0}
            )
            ack = await coord.recv("join_ack")
            assert ack["ok"] is True
            assert _node(ack["node"]) == max(nodes) + 1
            assert len(ack["address"]) == 2

            # A forged record (bad signature) and a stale replay (old
            # seqno) are both rejected by the hosting shard with a NAK.
            forged = MembershipRecord(
                LEAVE, nodes[3], 3, (), signature="00" * 32
            )
            await coord.send(
                {"kind": "join", "record": forged.to_dict(), "host_shard": 0}
            )
            nak = await coord.recv("join_ack")
            assert nak["ok"] is False
            await coord.send(
                {"kind": "join", "record": join.to_dict(), "host_shard": 0}
            )
            stale = await coord.recv("join_ack")
            assert stale["ok"] is False

            # Signed LEAVE: flows touching the leaver stop, the node is
            # retired after the drain grace, the directory forgets it.
            leave = MembershipRecord(LEAVE, nodes[4], 3).signed(mkey)
            await coord.send({"kind": "leave", "record": leave.to_dict()})

            # Relayed restart announce from another shard: local peers
            # re-point and reset their PoR halves (no link -> skipped).
            await coord.send(
                {
                    "kind": "peer_update",
                    "node": nodes[1],
                    "address": list(addresses[str(nodes[1])]),
                }
            )

            await asyncio.sleep(0.8)  # past LEAVE_DRAIN_GRACE
            await coord.send({"kind": "stop"})
            frame = await coord.recv("report")
            await asyncio.wait_for(task, timeout=30.0)
            return frame["report"]

    report = run(scenario())
    assert report["shard"] == 0
    assert report["failed"] is False
    assert report["joined"] == [max(nodes) + 1]
    assert report["departed"] == [nodes[4]]
    ledger = report["membership"]
    assert ledger["last_seqno"] == 3
    assert [r["action"] for r in ledger["accepted"]] == ["join", "leave"]
    assert ledger["rejected_forged"] == 1
    assert ledger["rejected_stale"] == 1
    # Traffic ran: the stride-thinned flow plan plus the joiner's two
    # post-join flows, all with real sends.
    post_join = [f for f in report["flows"] if f["post_join"]]
    assert len(post_join) == 2
    assert all(f["source"] == max(nodes) + 1 for f in post_join)
    assert sum(f["sent"] for f in report["flows"]) > 0
    assert report["runtime_errors"] == []
    assert set(report["per_node"]) >= {str(n) for n in nodes if n != nodes[4]}


def test_worker_reports_boot_failure_to_coordinator():
    """A broken boot barrier (wrong frame kind) must tear the shard down
    and still ship a failed report — never hang or die silently."""
    topo = large_overlay(6, degree=4, seed=SEED)

    async def scenario():
        async with FakeCoordinator() as coord:
            payload = _payload(topo, coord.port, duration=2.0)
            task = asyncio.get_event_loop().create_task(
                worker_mod._worker(payload)
            )
            await coord.accept()
            await coord.recv("hello")
            await coord.send({"kind": "bogus"})
            frame = await coord.recv("report")
            await asyncio.wait_for(task, timeout=30.0)
            return frame["report"]

    report = run(scenario())
    assert report["failed"] is True
    assert any("addr_map" in err for err in report["runtime_errors"])


def test_worker_survives_lost_coordinator_and_announces_restarts():
    """Direct ShardDeployment handle: a supervised-restart announce goes
    up the control plane (and over UDP to other shards' seed nodes), and
    a dead coordinator connection stops the serve loop cleanly instead
    of wedging the shard."""
    topo = large_overlay(6, degree=4, seed=SEED)
    nodes = sorted(topo.nodes)

    async def scenario():
        async with FakeCoordinator() as coord:
            # Pretend a second shard exists whose seed node we host, so
            # the announce fast path has a UDP target to hit.
            payload = _payload(
                topo, coord.port, duration=2.0,
                seed_nodes={"0": nodes[0], "1": nodes[2]},
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", coord.port
            )
            await coord.accept()
            deployment = ShardDeployment(payload, reader, writer)
            barrier = asyncio.get_event_loop().create_task(
                coord.boot_barrier()
            )
            await deployment.start()
            await barrier
            serve = asyncio.get_event_loop().create_task(
                deployment.serve_cluster()
            )

            deployment.announce_restart(nodes[1], ("127.0.0.1", 45999))
            announce = await coord.recv("announce")
            assert _node(announce["node"]) == nodes[1]
            assert announce["address"] == ["127.0.0.1", 45999]
            assert deployment.addresses[nodes[1]] == ("127.0.0.1", 45999)

            # Coordinator dies: the serve loop notices and returns.
            coord.writer.close()
            await asyncio.wait_for(serve, timeout=30.0)
            await deployment.stop()
            writer.close()
            return deployment

    deployment = run(scenario())
    errors = " ".join(deployment._runtime_errors)
    assert "connection lost" in errors
    report = deployment.shard_report()
    assert report["shard"] == 0
    assert report["failed"] is False
    assert report["transport"]["datagrams_received"] > 0


def test_worker_live_config_flooding_and_node_coercion():
    topo = large_overlay(5, degree=2, seed=1)
    payload = _payload(topo, control_port=1, kpaths=0)
    config = _worker_live_config(payload)
    assert config.method == DisseminationMethod.flooding()
    assert config.nodes == 5
    assert _node("7") == 7
    assert _node("spine") == "spine"


def test_seed_directory_answers_queries_and_applies_announces():
    """Bootstrap discovery over real loopback UDP: queries resolve what
    the directory knows (silently omitting what it does not), announces
    update it, and an unreachable seed times out with a bounded retry."""

    async def scenario() -> Tuple[Dict[Any, Any], Dict[Any, Any], SeedDirectory, list]:
        seed_t = await AsyncioUdpTransport.open(1, host="127.0.0.1")
        joiner_t = await AsyncioUdpTransport.open(9, host="127.0.0.1")
        announced = []
        directory = SeedDirectory(
            seed_t,
            {1: seed_t.local_address, 3: ("127.0.0.1", 41000)},
            on_announce=lambda node, addr: announced.append((node, addr)),
        )
        try:
            resolved = await query_addresses(
                joiner_t, 1, seed_t.local_address, targets=(3, 5), nonce=70
            )
            # An announce folds a new binding in; re-query sees it.
            joiner_t.sendto_address(
                encode_datagram(9, 1, AddrAnnounce(9, "127.0.0.1", 42424)),
                seed_t.local_address,
            )
            await asyncio.sleep(0.1)
            directory.forget(3)
            second = await query_addresses(
                joiner_t, 1, seed_t.local_address, targets=(3, 9), nonce=71
            )
            return resolved, second, directory, announced
        finally:
            seed_t.close()
            joiner_t.close()

    resolved, second, directory, announced = run(scenario())
    assert resolved == {3: ("127.0.0.1", 41000)}
    assert second == {9: ("127.0.0.1", 42424)}
    assert directory.queries_answered == 2
    assert directory.announces_applied == 1
    assert announced == [(9, ("127.0.0.1", 42424))]


def test_query_addresses_times_out_against_dead_seed():
    async def scenario():
        transport = await AsyncioUdpTransport.open(2, host="127.0.0.1")
        try:
            with pytest.raises(LiveRuntimeError, match="timed out"):
                await query_addresses(
                    transport, 1, ("127.0.0.1", 1), targets=(3,),
                    nonce=5, timeout=0.05, attempts=2,
                )
        finally:
            transport.close()

    run(scenario())
