"""The fitted global cloud must satisfy every documented Table III target."""

import pytest

from repro.topology import global_cloud
from repro.topology.analysis import (
    average_k_paths_metrics,
    average_shortest_metrics,
    minimum_pair_connectivity,
    table3,
)


@pytest.fixture(scope="module")
def topo():
    return global_cloud.topology()


@pytest.fixture(scope="module")
def rows(topo):
    return table3(topo)


class TestStructure:
    def test_twelve_nodes(self, topo):
        assert len(topo.nodes) == 12

    def test_thirty_two_edges(self, topo):
        assert topo.edge_count == 32

    def test_three_regions(self, topo):
        regions = {topo.node_info[n]["region"] for n in topo.nodes}
        assert regions == {"east-asia", "north-america", "europe"}

    def test_at_least_three_disjoint_paths_between_any_two_nodes(self, topo):
        assert minimum_pair_connectivity(topo) >= 3

    def test_flow_7_9_spans_europe_to_east_asia(self, topo):
        assert topo.node_info[7]["region"] == "europe"
        assert topo.node_info[9]["region"] == "east-asia"

    def test_flow_7_9_is_among_longest(self, topo):
        """7→9 is described as a worst-case flow spanning ~half the globe."""
        latency_7_9 = topo.path_weight(topo.shortest_path(7, 9))
        all_latencies = [
            topo.path_weight(topo.shortest_path(a, b)) for a, b in topo.node_pairs()
        ]
        assert latency_7_9 >= sorted(all_latencies)[-5]

    def test_latencies_positive_and_sane(self, topo):
        for a, b in topo.edges():
            assert 0.001 < topo.weight(a, b) < 0.120  # 1ms .. 120ms one-way

    def test_evaluation_flows_are_valid(self, topo):
        for src, dst in global_cloud.EVALUATION_FLOWS:
            assert topo.has_node(src) and topo.has_node(dst)
            assert src != dst


class TestTable3Fit:
    """Tolerances: hops within 10% of the paper, latencies within 10%."""

    def test_k1_avg_hops(self, rows):
        assert rows["K=1"].avg_hops == pytest.approx(1.9, rel=0.10)

    def test_k1_latency(self, rows):
        assert rows["K=1"].avg_path_latency_ms == pytest.approx(41.4, rel=0.10)

    def test_k2_scaled_cost(self, rows):
        assert rows["K=2"].scaled_cost == pytest.approx(2.3, rel=0.10)

    def test_k2_latency(self, rows):
        assert rows["K=2"].avg_path_latency_ms == pytest.approx(43.5, rel=0.10)

    def test_k3_scaled_cost(self, rows):
        assert rows["K=3"].scaled_cost == pytest.approx(3.5, rel=0.10)

    def test_k3_latency(self, rows):
        assert rows["K=3"].avg_path_latency_ms == pytest.approx(46.6, rel=0.10)

    def test_naive_flooding_is_64(self, rows):
        assert rows["Naive Flooding"].avg_hops == 64.0

    def test_engineered_flooding_is_32(self, rows):
        assert rows["Engineered Flooding"].avg_hops == 32.0

    def test_latency_increases_with_k(self, rows):
        assert (
            rows["K=1"].avg_path_latency_ms
            < rows["K=2"].avg_path_latency_ms
            < rows["K=3"].avg_path_latency_ms
        )

    def test_flooding_rows_have_no_latency(self, rows):
        assert rows["Naive Flooding"].avg_path_latency_ms is None
        assert rows["Engineered Flooding"].avg_path_latency_ms is None


class TestGeography:
    def test_great_circle_sanity(self):
        # New York - London is about 5 570 km.
        assert global_cloud.great_circle_km(3, 6) == pytest.approx(5570, rel=0.02)
        # Tokyo - Hong Kong is about 2 890 km.
        assert global_cloud.great_circle_km(9, 12) == pytest.approx(2890, rel=0.03)

    def test_link_latency_formula(self):
        km = global_cloud.great_circle_km(3, 6)
        expected = km * 1.1 / 200_000.0
        assert global_cloud.link_latency(3, 6) == pytest.approx(expected)

    def test_region_of(self):
        assert global_cloud.region_of(9) == "east-asia"
        assert global_cloud.region_of(6) == "europe"


class TestAnalysisHelpers:
    def test_baseline_scaled_cost_is_one(self, topo):
        baseline = average_shortest_metrics(topo)
        assert baseline.scaled_cost == 1.0

    def test_k2_hops_exceed_double_k1(self, topo, rows):
        """Paper: K=2 costs 'more than double' the K=1 baseline."""
        assert rows["K=2"].avg_hops > 2 * rows["K=1"].avg_hops

    def test_k_metrics_monotone(self, topo, rows):
        assert rows["K=1"].avg_hops < rows["K=2"].avg_hops < rows["K=3"].avg_hops

    def test_direct_call_matches_table(self, topo, rows):
        baseline = average_shortest_metrics(topo)
        k2 = average_k_paths_metrics(topo, 2, baseline.avg_hops)
        assert k2.avg_hops == rows["K=2"].avg_hops
