"""Unit tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import PeriodicTimer, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advanced to the horizon
        sim.run(until=6.0)
        assert fired == [1, 5]

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_schedule_during_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_step_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_events_run_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_run == 4

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
    def test_property_execution_order_is_sorted(self, delays):
        sim = Simulator()
        executed = []
        for d in delays:
            sim.schedule(d, lambda t=d: executed.append(t))
        sim.run()
        assert executed == sorted(delays)


class TestPendingAndCompaction:
    def test_pending_counts_live_events_only(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
        assert sim.pending == 6
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 4

    def test_pending_after_cancelled_head_pops(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        sim.run(until=1.5)  # pops the cancelled head without running it
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_compaction_drops_cancelled_events(self):
        sim = Simulator()
        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        doomed = [sim.schedule(100.0 + i, lambda: None) for i in range(200)]
        for handle in doomed:
            handle.cancel()
        # Compaction swept the heap (repeatedly) while cancelled entries
        # dominated; it stops once the queue shrinks below the floor, so a
        # few dead entries may legitimately remain.
        assert len(sim._queue) < sim.COMPACT_MIN_QUEUE
        assert sim.pending == len(keep)
        executed = sim.run()
        assert executed == len(keep)

    def test_small_queues_not_compacted(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        doomed = [sim.schedule(2.0 + i, lambda: None) for i in range(5)]
        for handle in doomed:
            handle.cancel()
        # Below COMPACT_MIN_QUEUE the lazy-deletion heap is left alone.
        assert len(sim._queue) == 6
        assert sim.pending == 1

    def test_execution_order_survives_compaction(self):
        sim = Simulator()
        order = []
        for i in range(40):
            sim.schedule(float(i), order.append, i)
        doomed = [sim.schedule(1000.0 + i, lambda: None) for i in range(100)]
        for handle in doomed:
            handle.cancel()
        sim.run()
        assert order == list(range(40))

    def test_cancel_after_execution_does_not_drift_accounting(self):
        # Regression: cancelling an already-executed handle used to fire
        # on_cancel and inflate _cancelled, making `pending` undercount
        # live events (and eventually assert).
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # stale cancel: the event already ran
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 1
        assert sim.run() == 1
        assert sim.pending == 0

    def test_stale_cancel_soak_keeps_accounting_exact(self):
        # A protocol-timer pattern: every event reschedules itself and
        # cancels its predecessor's (already executed) handle.  Accounting
        # must stay exact over many iterations.
        sim = Simulator()
        state = {}

        def tick(step):
            old = state.get("handle")
            if old is not None:
                old.cancel()  # always stale: old ran to schedule us
            if step < 500:
                state["handle"] = sim.schedule(1.0, tick, step + 1)

        state["handle"] = sim.schedule(1.0, tick, 0)
        sim.run()
        assert sim.pending == 0
        assert sim._cancelled == 0

    def test_cancelled_head_pop_decrements_cancelled_count(self):
        sim = Simulator()
        doomed = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        survivor = sim.schedule(100.0, lambda: None)
        for handle in doomed:
            handle.cancel()
        sim.run()  # pops every cancelled head on its way to the survivor
        assert sim._cancelled == 0
        assert sim.pending == 0
        assert survivor.cancelled is False


class TestPeriodicTimer:
    def test_fires_at_interval(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.running

    def test_phase_offsets_first_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(phase=0.25)
        sim.run(until=3.0)
        assert ticks == [1.25, 2.25]

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_no_phase_drift_over_long_soak(self):
        # Regression: rescheduling at now + interval accumulates binary
        # floating-point error for intervals like 0.1; firings must stay
        # bit-exactly on the grid epoch + n * interval instead.
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.1, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=100.0)
        assert len(ticks) == 1000
        assert all(t == (i + 1) * 0.1 for i, t in enumerate(ticks))

    def test_restart_rebases_the_grid(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=2.5)
        timer.start()  # restart at t=2.5: new epoch
        sim.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.5, 4.5]


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        sim = Simulator(seed=7)
        assert sim.rngs.stream("a") is sim.rngs.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        sim1 = Simulator(seed=7)
        a_first = [sim1.rngs.stream("a").random() for _ in range(5)]
        sim2 = Simulator(seed=7)
        sim2.rngs.stream("b").random()  # interleave another stream
        a_second = [sim2.rngs.stream("a").random() for _ in range(5)]
        assert a_first == a_second

    def test_different_seeds_differ(self):
        r1 = Simulator(seed=1).rngs.stream("a").random()
        r2 = Simulator(seed=2).rngs.stream("a").random()
        assert r1 != r2

    def test_fork_is_deterministic(self):
        sim = Simulator(seed=3)
        fork1 = sim.rngs.fork("child").stream("x").random()
        fork2 = Simulator(seed=3).rngs.fork("child").stream("x").random()
        assert fork1 == fork2
