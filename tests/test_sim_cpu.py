"""Unit tests for the per-node CPU cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cpu import Cpu, CpuCosts
from repro.sim.engine import Simulator


class TestCpuCosts:
    def test_free_table_is_free(self):
        assert CpuCosts.free().is_free

    def test_default_table_is_not_free(self):
        assert not CpuCosts().is_free

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuCosts(rsa_sign=-1.0)


class TestCpuExecution:
    def test_zero_cost_runs_synchronously(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts.free())
        done = []
        cpu.execute(0.0, done.append, "now")
        assert done == ["now"]  # no event loop needed

    def test_cost_delays_completion(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts())
        finished = []
        cpu.execute(0.5, lambda: finished.append(sim.now))
        sim.run()
        assert finished == [0.5]

    def test_work_serializes(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts())
        finished = []
        cpu.execute(0.5, lambda: finished.append(sim.now))
        cpu.execute(0.5, lambda: finished.append(sim.now))
        sim.run()
        assert finished == [0.5, 1.0]

    def test_idle_gap_not_charged(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts())
        finished = []
        cpu.execute(0.5, lambda: finished.append(sim.now))
        sim.schedule(10.0, lambda: cpu.execute(0.5, lambda: finished.append(sim.now)))
        sim.run()
        assert finished == [0.5, 10.5]

    def test_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts())
        cpu.execute(2.0, lambda: None)
        sim.run()
        sim.run(until=10.0)
        assert cpu.utilization(10.0) == pytest.approx(0.2)
        assert cpu.utilization(0.0) == 0.0

    def test_convenience_wrappers_charge_configured_costs(self):
        sim = Simulator()
        costs = CpuCosts(rsa_sign=1.0, rsa_verify=0.25, hmac=0.125, process_packet=0.0625)
        cpu = Cpu(sim, costs)
        finished = []
        cpu.sign(lambda: finished.append(("sign", sim.now)))
        cpu.verify(lambda: finished.append(("verify", sim.now)))
        cpu.hmac(lambda: finished.append(("hmac", sim.now)))
        cpu.process(lambda: finished.append(("process", sim.now)))
        sim.run()
        assert finished == [
            ("sign", 1.0),
            ("verify", 1.25),
            ("hmac", 1.375),
            ("process", 1.4375),
        ]

    def test_operations_counter(self):
        sim = Simulator()
        cpu = Cpu(sim, CpuCosts.free())
        for _ in range(5):
            cpu.process(lambda: None)
        assert cpu.operations == 5
