"""Unit tests for the Priority Messaging per-link queue: eviction policy,
round-robin source fairness, priority order, expiration, cancellation."""

import pytest

from repro.errors import ConfigurationError
from repro.messaging.message import Message, Semantics
from repro.messaging.priority import PriorityLinkQueue


def msg(source, seq, priority=5, expiration=1e9, dest="d"):
    return Message(
        source=source,
        dest=dest,
        seq=seq,
        semantics=Semantics.PRIORITY,
        priority=priority,
        expiration=expiration,
    )


class TestOfferAndOrder:
    def test_single_source_priority_order(self):
        q = PriorityLinkQueue(capacity=10)
        q.offer(msg("a", 1, priority=2), now=0.0)
        q.offer(msg("a", 2, priority=9), now=0.0)
        q.offer(msg("a", 3, priority=5), now=0.0)
        out = [q.next_message(0.0).priority for _ in range(3)]
        assert out == [9, 5, 2]

    def test_oldest_first_within_priority(self):
        q = PriorityLinkQueue(capacity=10)
        q.offer(msg("a", 1, priority=5), now=0.0)
        q.offer(msg("a", 2, priority=5), now=0.0)
        assert q.next_message(0.0).seq == 1
        assert q.next_message(0.0).seq == 2

    def test_round_robin_across_sources(self):
        q = PriorityLinkQueue(capacity=10)
        for seq in range(1, 4):
            q.offer(msg("a", seq), now=0.0)
        q.offer(msg("b", 1), now=0.0)
        served = [q.next_message(0.0).source for _ in range(4)]
        assert served == ["a", "b", "a", "a"]

    def test_high_priority_of_one_source_does_not_preempt_another(self):
        """Priorities are never compared across sources."""
        q = PriorityLinkQueue(capacity=10)
        q.offer(msg("spammer", 1, priority=10), now=0.0)
        q.offer(msg("spammer", 2, priority=10), now=0.0)
        q.offer(msg("honest", 1, priority=1), now=0.0)
        served = [(m.source, m.priority) for m in (q.next_message(0.0) for _ in range(3))]
        assert served == [("spammer", 10), ("honest", 1), ("spammer", 10)]

    def test_empty_queue(self):
        q = PriorityLinkQueue(capacity=10)
        assert q.next_message(0.0) is None
        assert len(q) == 0

    def test_duplicate_offer_ignored(self):
        q = PriorityLinkQueue(capacity=10)
        m = msg("a", 1)
        assert q.offer(m, now=0.0)
        assert not q.offer(m, now=0.0)
        assert len(q) == 1


class TestEvictionPolicy:
    def test_heaviest_source_loses_oldest_lowest_priority(self):
        q = PriorityLinkQueue(capacity=4)
        q.offer(msg("heavy", 1, priority=3), now=0.0)
        q.offer(msg("heavy", 2, priority=1), now=0.0)  # oldest lowest
        q.offer(msg("heavy", 3, priority=1), now=0.0)
        q.offer(msg("light", 1, priority=1), now=0.0)
        # Queue full; a new message forces eviction from "heavy".
        assert q.offer(msg("light", 2, priority=9), now=0.0)
        assert q.dropped_for_space == 1
        assert q.source_usage("heavy") == 2
        assert q.source_usage("light") == 2
        remaining = [q.next_message(0.0) for _ in range(4)]
        assert ("heavy", 2) not in [(m.source, m.seq) for m in remaining]

    def test_new_message_dropped_when_own_source_heaviest_and_lowest(self):
        q = PriorityLinkQueue(capacity=3)
        q.offer(msg("heavy", 1, priority=9), now=0.0)
        q.offer(msg("heavy", 2, priority=9), now=0.0)
        q.offer(msg("heavy", 3, priority=9), now=0.0)
        # heavy is the heaviest source, and the new message is its oldest
        # lowest-priority message (priority 1): it evicts itself.
        assert not q.offer(msg("heavy", 4, priority=1), now=0.0)
        assert len(q) == 3

    def test_spammer_cannot_evict_honest_source(self):
        """A source flooding highest-priority messages only evicts itself."""
        q = PriorityLinkQueue(capacity=5)
        q.offer(msg("honest", 1, priority=1), now=0.0)
        for seq in range(1, 20):
            q.offer(msg("spammer", seq, priority=10), now=0.0)
        assert q.source_usage("honest") == 1
        assert q.source_usage("spammer") == 4

    def test_capacity_never_exceeded(self):
        q = PriorityLinkQueue(capacity=8)
        for seq in range(100):
            q.offer(msg(f"s{seq % 5}", seq), now=0.0)
        assert len(q) <= 8


class TestExpiration:
    def test_expired_message_rejected_at_offer(self):
        q = PriorityLinkQueue(capacity=5)
        assert not q.offer(msg("a", 1, expiration=1.0), now=2.0)
        assert q.dropped_expired == 1

    def test_expired_message_skipped_at_send(self):
        q = PriorityLinkQueue(capacity=5)
        q.offer(msg("a", 1, expiration=1.0), now=0.0)
        q.offer(msg("a", 2, expiration=10.0), now=0.0)
        out = q.next_message(5.0)
        assert out.seq == 2
        assert q.dropped_expired == 1
        assert len(q) == 0


class TestCancellation:
    def test_cancel_removes_from_queue(self):
        q = PriorityLinkQueue(capacity=5)
        m = msg("a", 1)
        q.offer(m, now=0.0)
        assert q.cancel(m.uid)
        assert len(q) == 0
        assert q.next_message(0.0) is None
        assert q.cancelled_by_feedback == 1

    def test_cancel_unknown_uid(self):
        q = PriorityLinkQueue(capacity=5)
        assert not q.cancel(("nope",))

    def test_cancel_then_other_messages_still_served(self):
        q = PriorityLinkQueue(capacity=5)
        m1, m2 = msg("a", 1), msg("a", 2)
        q.offer(m1, now=0.0)
        q.offer(m2, now=0.0)
        q.cancel(m1.uid)
        assert q.next_message(0.0).seq == 2

    def test_double_cancel_counts_once(self):
        q = PriorityLinkQueue(capacity=5)
        m = msg("a", 1)
        q.offer(m, now=0.0)
        assert q.cancel(m.uid)
        assert not q.cancel(m.uid)
        assert len(q) == 0


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityLinkQueue(capacity=0)

    def test_active_sources(self):
        q = PriorityLinkQueue(capacity=5)
        q.offer(msg("a", 1), now=0.0)
        q.offer(msg("b", 1), now=0.0)
        q.next_message(0.0)
        assert len(q.active_sources()) == 1
