"""Tests for the protocol event tracer."""

import pytest

from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.sim.trace import TraceEvent, Tracer
from repro.topology.generators import ring

PACED = OverlayConfig(link_bandwidth_bps=1e6)


@pytest.fixture
def traced_net():
    net = OverlayNetwork.build(ring(4), PACED)
    tracer = Tracer.attach(net)
    return net, tracer


class TestRecording:
    def test_inject_and_deliver_recorded(self, traced_net):
        net, tracer = traced_net
        net.node(1).send_priority(3)
        net.run(1.0)
        assert len(tracer.query(category="inject", node=1)) == 1
        deliveries = tracer.query(category="deliver", node=3)
        assert len(deliveries) == 1
        assert "1->3" in deliveries[0].detail

    def test_reliable_inject_recorded_only_when_accepted(self, traced_net):
        net, tracer = traced_net
        assert net.node(1).send_reliable(3)
        net.run(1.0)
        assert len(tracer.query(category="inject", node=1)) == 1

    def test_crash_recover_recorded(self, traced_net):
        net, tracer = traced_net
        net.run(0.5)
        net.crash(2)
        net.run(0.5)
        net.recover(2)
        net.run(0.5)
        assert tracer.query(category="crash", node=2)
        assert tracer.query(category="recover", node=2)

    def test_routing_outcomes_recorded(self, traced_net):
        net, tracer = traced_net
        from repro.byzantine.attacks import RoutingWeightAttack

        RoutingWeightAttack(net, attacker=2).launch()
        net.run(1.0)
        routing_events = tracer.query(category="routing")
        assert any("below_min_weight" in e.detail for e in routing_events)

    def test_existing_on_deliver_still_invoked(self):
        net = OverlayNetwork.build(ring(4), PACED)
        seen = []
        net.node(3).on_deliver = lambda m: seen.append(m.seq)
        tracer = Tracer.attach(net)
        net.node(1).send_priority(3)
        net.run(1.0)
        assert seen  # the app callback survived the tracer


class TestQueriesAndLimits:
    def test_since_filter(self, traced_net):
        net, tracer = traced_net
        net.node(1).send_priority(3)
        net.run(2.0)
        net.node(1).send_priority(3)
        net.run(2.0)
        assert len(tracer.query(category="inject", since=1.0)) == 1

    def test_summary_counts(self, traced_net):
        net, tracer = traced_net
        net.node(1).send_priority(3)
        net.run(1.0)
        summary = tracer.summary()
        assert summary["inject"] == 1
        assert summary["deliver"] == 1

    def test_dump_format(self, traced_net):
        net, tracer = traced_net
        net.node(1).send_priority(3)
        net.run(1.0)
        text = tracer.dump(limit=1)
        assert "inject" in text
        assert "more" in text or len(tracer.events) == 1

    def test_max_events_bounded(self):
        net = OverlayNetwork.build(ring(4), PACED)
        tracer = Tracer.attach(net, max_events=3)
        for _ in range(10):
            net.node(1).send_priority(3)
        net.run(1.0)
        assert len(tracer.events) == 3
        assert tracer.dropped > 0

    def test_event_str(self):
        event = TraceEvent(1.25, 9, "deliver", "x")
        assert "deliver" in str(event)
        assert "1.25" in str(event)
