"""Batched wire-path tests: the batch container codec and the batched
UDP send path.

The batch container (``FLAG_BATCH``) is the unit of the zero-copy live
transport: several link envelopes ride one datagram, so ACKs piggyback
with data and one socket wakeup moves a whole burst.  These tests pin:

* **Round trip** — ``decode(encode_batch(xs))`` reproduces every frame,
  in order, for arbitrary encodable envelopes (Hypothesis);
* **Degeneration** — a 1-frame batch is byte-identical to the classic
  layout, so batching never changes unbatched bytes on the wire;
* **Robustness** — truncation, bit flips, hostile frame counts, and
  hostile frame-length prefixes are all rejected with the typed
  :class:`WireDecodeError`, fast, and without attacker-sized allocation;
* **Send path** — ``sendto_batch`` falls back to per-datagram ``sendto``
  when ``socket.sendmmsg`` is unavailable (or a chaos subclass
  interposes), keeping the retry/drop accounting exact, and the
  channel-level batch path degrades per-packet when a batch cannot be
  encoded.
"""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireDecodeError, WireEncodeError
from repro.link.por import _HelloWrapper
from repro.messaging.message import Hello
from repro.runtime.transport import AsyncioUdpTransport, UdpSendChannel
from repro.runtime.wire import (
    FLAG_BATCH,
    HEADER_SIZE,
    MAGIC,
    VERSION,
    batch_fits,
    decode_datagram,
    encode_batch_datagram,
    encode_datagram,
)
from tests.test_runtime_wire import ENVELOPES, assert_packets_equal

# ----------------------------------------------------------------------
# Batch codec: round trip and degeneration
# ----------------------------------------------------------------------
@given(packets=st.lists(ENVELOPES, min_size=1, max_size=6))
@settings(max_examples=100)
def test_batch_round_trip(packets):
    datagram = decode_datagram(encode_batch_datagram("a", "b", packets))
    assert datagram.sender == "a"
    assert datagram.receiver == "b"
    frames = datagram.frames()
    assert len(frames) == len(packets)
    for original, decoded in zip(packets, frames):
        assert_packets_equal(original, decoded)
    assert datagram.packet is frames[0]


def test_single_frame_batch_is_byte_identical_to_classic():
    packet = _HelloWrapper(Hello("a", 7))
    assert encode_batch_datagram("a", "b", [packet]) == encode_datagram(
        "a", "b", packet
    )


def test_empty_batch_rejected():
    with pytest.raises(WireEncodeError, match="empty"):
        encode_batch_datagram("a", "b", [])


def test_batch_fits_bounds():
    assert batch_fits([100, 100, 100])
    assert not batch_fits([2**16] * 20)


# ----------------------------------------------------------------------
# Batch robustness: truncation, corruption, hostile internals
# ----------------------------------------------------------------------
def _two_frame_batch() -> bytes:
    return encode_batch_datagram(
        "a", "b", [_HelloWrapper(Hello("a", 1)), _HelloWrapper(Hello("a", 2))]
    )


@given(cut=st.integers(min_value=0, max_value=400))
@settings(max_examples=100)
def test_batch_truncation_rejected(cut):
    encoded = _two_frame_batch()
    truncated = encoded[: min(cut, len(encoded) - 1)]
    with pytest.raises(WireDecodeError):
        decode_datagram(truncated)


@given(data=st.data())
@settings(max_examples=200)
def test_batch_single_bit_flip_rejected(data):
    encoded = bytearray(_two_frame_batch())
    position = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    encoded[position] ^= 1 << bit
    with pytest.raises(WireDecodeError):
        decode_datagram(bytes(encoded))


def _forge(body: bytes, flags: int = FLAG_BATCH) -> bytes:
    """A datagram with a *valid* header and CRC over an arbitrary body,
    so decoding exercises the body parser rather than the checksum."""
    header = MAGIC + struct.pack(">BBI", VERSION, flags, len(body))
    return header + struct.pack(">I", zlib.crc32(header + body)) + body


def _batch_count_offset() -> int:
    """Byte offset of the u16 frame count inside a batch body for the
    sender/receiver pair ("a", "b"), derived from the wire layouts:
    classic body = prefix + envelope; batch body = prefix + 2 + 2*(4 +
    envelope)."""
    packet = _HelloWrapper(Hello("a", 1))
    classic_body = len(encode_datagram("a", "b", packet)) - HEADER_SIZE
    batch_body = len(encode_batch_datagram("a", "b", [packet, packet])) - HEADER_SIZE
    envelope = batch_body - classic_body - 10
    return classic_body - envelope


def test_batch_count_offset_derivation():
    body = bytearray(_two_frame_batch()[HEADER_SIZE:])
    assert struct.unpack_from(">H", body, _batch_count_offset())[0] == 2


def test_zero_frame_count_rejected():
    body = bytearray(_two_frame_batch()[HEADER_SIZE:])
    struct.pack_into(">H", body, _batch_count_offset(), 0)
    with pytest.raises(WireDecodeError, match="empty batch"):
        decode_datagram(_forge(bytes(body)))


def test_hostile_frame_count_fails_fast_without_allocation():
    # Claim 65535 frames in a body that holds two: the per-frame budget
    # check must reject before any frame-sized work happens.
    body = bytearray(_two_frame_batch()[HEADER_SIZE:])
    struct.pack_into(">H", body, _batch_count_offset(), 0xFFFF)
    with pytest.raises(WireDecodeError):
        decode_datagram(_forge(bytes(body)))


@given(claim=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100)
def test_hostile_frame_length_prefix_rejected(claim):
    # Overwrite the first frame's u32 length with an arbitrary claim;
    # anything but the true length must be the typed error (an over-long
    # claim overruns the body; a short one leaves trailing bytes).
    body = bytearray(_two_frame_batch()[HEADER_SIZE:])
    offset = _batch_count_offset() + 2
    true_len = struct.unpack_from(">I", body, offset)[0]
    if claim == true_len:
        return
    struct.pack_into(">I", body, offset, claim)
    with pytest.raises(WireDecodeError):
        decode_datagram(_forge(bytes(body)))


# ----------------------------------------------------------------------
# Transport: sendto fallback, retry/drop accounting
# ----------------------------------------------------------------------
class _FakeAsyncioTransport:
    """Stands in for asyncio's DatagramTransport: records sends, fails
    the first ``fail_first`` of them with OSError."""

    def __init__(self, fail_first: int = 0):
        self.sent = []
        self.fail_first = fail_first

    def sendto(self, data, address):
        if self.fail_first > 0:
            self.fail_first -= 1
            raise OSError("ENOBUFS")
        self.sent.append((bytes(data), address))


class _FakeLoop:
    """Records call_later callbacks so tests fire retries explicitly."""

    def __init__(self):
        self.pending = []

    def call_later(self, delay, callback, *args):
        self.pending.append((delay, callback, args))

    def fire_all(self):
        pending, self.pending = self.pending, []
        for _, callback, args in pending:
            callback(*args)


class _FakeSocketNoMmsg:
    """A socket facade without sendmmsg (e.g. macOS / older kernels)."""


class _FakeSocketMmsg:
    def __init__(self, accept: int = 10**9):
        self.batches = []
        self.accept = accept

    def sendmmsg(self, messages):
        self.batches.append(messages)
        return min(len(messages), self.accept)


def _wired_transport(fail_first=0, sock=None):
    transport = AsyncioUdpTransport("n")
    transport._transport = _FakeAsyncioTransport(fail_first=fail_first)
    transport._loop = _FakeLoop()
    transport._socket = sock
    transport.register_peer("peer", ("127.0.0.1", 9))
    return transport


def test_send_retry_then_drop_is_accounted_on_transport_and_channel():
    transport = _wired_transport(fail_first=2)
    channel = UdpSendChannel(transport, "peer")
    transport.sendto("peer", b"payload", channel=channel)
    assert transport.send_errors == 1
    assert len(transport._loop.pending) == 1
    assert transport.send_drops == 0  # not lost yet: a retry is queued
    transport._loop.fire_all()
    assert transport.send_retries == 1
    assert channel.send_retries == 1
    # The retry failed too: the loss is definitive, on both ledgers.
    assert transport.send_errors == 2
    assert transport.send_drops == 1
    assert channel.send_drops == 1


def test_send_retry_success_is_not_a_drop():
    transport = _wired_transport(fail_first=1)
    channel = UdpSendChannel(transport, "peer")
    transport.sendto("peer", b"payload", channel=channel)
    transport._loop.fire_all()
    assert transport.send_retries == 1
    assert channel.send_retries == 1
    assert transport.send_drops == 0
    assert channel.send_drops == 0
    assert transport._transport.sent == [(b"payload", ("127.0.0.1", 9))]


def test_sendto_batch_without_sendmmsg_falls_back_to_sendto():
    transport = _wired_transport(sock=_FakeSocketNoMmsg())
    transport.sendto_batch("peer", [b"one", b"two", b"three"])
    assert [data for data, _ in transport._transport.sent] == [
        b"one", b"two", b"three"
    ]


def test_sendto_batch_uses_sendmmsg_when_available():
    sock = _FakeSocketMmsg()
    transport = _wired_transport(sock=sock)
    transport.sendto_batch("peer", [b"one", b"two"])
    assert len(sock.batches) == 1
    assert [buffers[0] for buffers, _anc, _flags, _addr in sock.batches[0]] == [
        b"one", b"two"
    ]
    assert transport._transport.sent == []  # kernel batch path, no sendto


def test_sendto_batch_partial_kernel_accept_finishes_via_sendto():
    sock = _FakeSocketMmsg(accept=1)
    transport = _wired_transport(sock=sock)
    transport.sendto_batch("peer", [b"one", b"two", b"three"])
    assert len(sock.batches) == 1
    assert [data for data, _ in transport._transport.sent] == [b"two", b"three"]


def test_sendto_batch_respects_subclass_interposition():
    class Interposing(AsyncioUdpTransport):
        def sendto(self, peer_id, data, _retry=False, channel=None):
            self.seen = getattr(self, "seen", [])
            self.seen.append(bytes(data))
            super().sendto(peer_id, data, _retry=_retry, channel=channel)

    sock = _FakeSocketMmsg()
    transport = Interposing("n")
    transport._transport = _FakeAsyncioTransport()
    transport._loop = _FakeLoop()
    transport._socket = sock
    transport.register_peer("peer", ("127.0.0.1", 9))
    transport.sendto_batch("peer", [b"one", b"two"])
    # The chaos-style subclass must see every datagram: the kernel batch
    # fast path is disabled when sendto is overridden.
    assert sock.batches == []
    assert transport.seen == [b"one", b"two"]


def test_channel_batch_with_unencodable_packet_degrades_per_packet():
    transport = _wired_transport(sock=_FakeSocketNoMmsg())
    channel = UdpSendChannel(transport, "peer")
    good = _HelloWrapper(Hello("n", 1))
    channel.send_batch([(good, 64), (object(), 64), (good, 64)])
    # The poisoned batch container fell back to classic datagrams: both
    # good packets made it out, the bad one is counted, nothing raised.
    assert channel.encode_errors == 1
    assert transport.encode_errors == 1
    assert len(transport._transport.sent) == 2
    for data, _ in transport._transport.sent:
        assert_packets_equal(decode_datagram(data).packet, good)


def test_channel_batch_counts_one_datagram_for_many_packets():
    transport = _wired_transport(sock=_FakeSocketNoMmsg())
    channel = UdpSendChannel(transport, "peer")
    packets = [(_HelloWrapper(Hello("n", stamp)), 64) for stamp in range(5)]
    channel.send_batch(packets)
    assert channel.packets_sent == 5
    assert channel.datagrams_sent == 1
    assert len(transport._transport.sent) == 1
    data, _ = transport._transport.sent[0]
    assert len(decode_datagram(data).frames()) == 5
