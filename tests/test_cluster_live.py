"""Integration tests for the multi-process sharded cluster runtime.

Each test boots real worker OS processes (``multiprocessing`` spawn)
running real asyncio/UDP overlays, so these are the slowest tests in the
tier-1 suite — kept to small clusters and short durations.  Covered
here: end-to-end delivery across shard boundaries, signed mid-run
JOIN/LEAVE (the joiner's post-join delivery and the leaver's drain under
chaos), and the dead-worker regression (a killed child must be
attributed by exit code, never hang the coordinator's join).
"""

from __future__ import annotations

import asyncio

from repro.cluster.deployment import ClusterDeployment, run_cluster
from repro.cluster.spec import ClusterConfig


def test_cluster_two_shards_delivers_and_applies_membership():
    report = run_cluster(ClusterConfig(
        nodes=10, shards=2, duration=4.0, seed=21,
        rate_msgs_per_sec=8.0, joins=1, leaves=1,
    ))
    assert report.failures == []
    assert report.ok, report.to_dict()
    assert report.violations == 0
    # Every shard reported, every flow is tagged with its source shard,
    # and traffic crossed the process boundary in both directions.
    shards_seen = {f["shard"] for f in report.flows}
    assert shards_seen == {0, 1}
    assert report.correct_flow_ratio >= 0.95
    # One signed JOIN was applied: the joiner (11 = max + 1) sourced
    # post-join flows and delivered ≥ 99% on them.
    assert report.joined == [11]
    post_join = report.post_join_flows
    assert post_join and all(f["source"] == 11 for f in post_join)
    assert report.post_join_ratio >= 0.99
    # One signed LEAVE drained: the leaver is gone and excluded from the
    # delivery gate rather than counted as loss.
    assert len(report.departed) == 1
    assert str(report.departed[0]) in set(report.excluded)
    # Membership advanced the shared seqno ledger on every shard.
    for detail in report.shard_reports.values():
        ledger = detail["membership"]
        assert ledger["last_seqno"] == 3
        assert [r["action"] for r in ledger["accepted"]] == ["join", "leave"]


def test_cluster_leave_drains_under_soak_chaos():
    report = run_cluster(ClusterConfig(
        nodes=10, shards=2, duration=5.0, seed=3,
        rate_msgs_per_sec=8.0, chaos_preset="soak",
        joins=1, leaves=1,
    ))
    assert report.failures == []
    assert report.violations == 0
    assert report.ok
    # The departed node's flows are excluded, and the surviving correct
    # flows still clear the soak gate.
    assert len(report.departed) == 1
    assert str(report.departed[0]) in set(report.excluded)
    assert report.correct_flow_ratio >= 0.95
    # Chaos actually ran somewhere (the schedule is sliced per shard).
    injected = sum(
        sum(detail.get("chaos", {}).get("injector", {}).values())
        for detail in report.shard_reports.values()
        if isinstance(detail.get("chaos"), dict)
    )
    assert injected > 0


def test_cluster_churn_regression_sessions_survive():
    """Churn regression: >= 3 signed JOINs and >= 3 signed LEAVEs in one
    run, with the client session tier riding on top.  Gates: every shard
    applies the full membership timeline in lockstep (same last_seqno),
    post-churn delivery from the joiners clears 99%, and the session
    tier keeps its invariants (no double-processing, retry amplification
    within budget) while requests cross shard boundaries mid-churn."""
    joins, leaves = 3, 3
    report = run_cluster(ClusterConfig(
        nodes=12, shards=3, duration=9.0, drain=2.5, seed=29,
        rate_msgs_per_sec=8.0, joins=joins, leaves=leaves,
        session_rate=20.0,
    ))
    assert report.failures == []
    assert report.ok, report.to_dict()
    assert report.violations == 0
    # All churn events landed: three joiners sourced traffic, three
    # leavers drained and are excluded from the delivery gate.
    assert len(report.joined) == joins
    assert len(report.departed) == leaves
    excluded = set(report.excluded)
    assert {str(node) for node in report.departed} <= excluded
    # Ledger lockstep: every shard applied genesis + every churn event,
    # in the same order.
    expected_seqno = 1 + joins + leaves
    actions = None
    for detail in report.shard_reports.values():
        ledger = detail["membership"]
        assert ledger["last_seqno"] == expected_seqno
        shard_actions = [r["action"] for r in ledger["accepted"]]
        assert actions is None or shard_actions == actions
        actions = shard_actions
    assert actions == ["join"] * joins + ["leave"] * leaves
    # Post-churn delivery: the joiners' flows clear the 99% gate.
    post_join = report.post_join_flows
    assert post_join and {f["source"] for f in post_join} == set(report.joined)
    assert report.post_join_ratio >= 0.99
    # The session tier ran across every shard and kept its invariants
    # through the churn (requests to departed destinations fail cleanly;
    # they never double-process or blow the retry budget).
    sessions = report.sessions
    assert sessions is not None and sessions["requests"] > 0
    assert sessions["invariant_violations"] == 0
    assert sessions["double_processed"] == 0
    assert sessions["amplification"] <= 1.25 + 1e-9
    assert sessions["success_ratio"] >= 0.9
    per_shard = [
        detail["sessions"] for detail in report.shard_reports.values()
    ]
    assert all(snap is not None for snap in per_shard)


def test_dead_worker_is_attributed_not_hung():
    """Regression: killing a worker mid-run must surface an exit-code
    attribution naming the shard's nodes — and never hang the
    coordinator's stop()/join path."""

    async def check():
        config = ClusterConfig(
            nodes=8, shards=2, duration=3.0, seed=13,
            rate_msgs_per_sec=5.0, joins=0, leaves=0,
            report_timeout=5.0,
        )
        deployment = ClusterDeployment(config)
        await deployment.start()
        victim = deployment.workers[1]
        victim.kill()  # SIGKILL: no goodbye frame, no report
        await deployment.serve()
        return await deployment.finish()

    report = asyncio.run(asyncio.wait_for(check(), timeout=60.0))
    assert report.failed and not report.ok
    [failure] = [f for f in report.failures if "exited with code" in f]
    assert "shard 1" in failure
    # The dead shard's nodes are attributed in the failure string and
    # excluded from the delivery gate.
    dead_shard = report.shard_reports["1"]
    assert dead_shard["failed"] is True
    for node in dead_shard["nodes"]:
        assert node in failure
        assert node in set(report.excluded)
    # The surviving shard still reported normally.
    assert report.shard_reports["0"].get("failed") is not True
