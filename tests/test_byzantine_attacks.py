"""Tests for the canned attack drivers (Section VI-B style)."""

import pytest

from repro.byzantine.attacks import (
    CrashEvent,
    CrashSchedule,
    E2eAckSpamAttack,
    PrioritySpamAttack,
    ReplayAttack,
    RoutingWeightAttack,
    SaturationFlow,
)
from repro.errors import ConfigurationError
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.routing.validation import UpdateResult
from repro.topology.generators import clique, ring
from repro.workloads.traffic import ReliableBacklogTraffic

PACED = OverlayConfig(link_bandwidth_bps=1e6)


class TestSaturationFlow:
    def test_reaches_offered_rate_when_uncontended(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = SaturationFlow(net, 1, 3, rate_bps=2e5, size_bytes=882)
        flow.start()
        net.run(10.0)
        goodput = net.flow_goodput(1, 3).average_mbps(2.0, 10.0)
        assert goodput == pytest.approx(0.2 * 882 / 882, rel=0.2)

    def test_stop_halts_sending(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = SaturationFlow(net, 1, 3, rate_bps=2e5)
        flow.schedule(0.0, stop_at=1.0)
        net.run(5.0)
        sent_at_stop = flow.messages_sent
        net.run(5.0)
        assert flow.messages_sent == sent_at_stop

    def test_reliable_saturation_respects_backpressure(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = SaturationFlow(net, 1, 3, rate_bps=5e6, semantics=Semantics.RELIABLE)
        flow.start()
        net.run(5.0)
        assert net.delivered_count(1, 3) > 0
        # Every accepted message is eventually delivered (none lost).
        net.run(20.0)
        assert flow.messages_sent >= net.delivered_count(1, 3) > 100

    def test_invalid_rate_rejected(self):
        net = OverlayNetwork.build(ring(4), PACED)
        with pytest.raises(ConfigurationError):
            SaturationFlow(net, 1, 3, rate_bps=0.0)


class TestPrioritySpam:
    def test_spam_cannot_starve_honest_source(self):
        """Figure 7's core claim at unit scale."""
        net = OverlayNetwork.build(ring(4), PACED, seed=3)
        spam = PrioritySpamAttack(net, 2, 4, rate_bps=2e6)
        spam.start()
        honest = SaturationFlow(net, 1, 3, rate_bps=1.5e5, priority=1)
        honest.start()
        net.run(10.0)
        honest_goodput = net.flow_goodput(1, 3).average_mbps(3.0, 10.0)
        # Honest demand (0.15 Mbps) is below fair share (0.5 Mbps): kept.
        assert honest_goodput > 0.12


class TestRoutingWeightAttack:
    def test_attack_detected_and_ignored(self):
        net = OverlayNetwork.build(ring(4), PACED)
        attack = RoutingWeightAttack(net, attacker=2)
        updates = attack.launch()
        net.run(2.0)
        assert attack.updates_issued == len(updates) == 3
        # The attacker's MTMW neighbors detect provable misbehaviour and
        # do not forward the invalid updates any further.
        for honest in (1, 3):
            routing = net.node(honest).routing
            assert 2 in routing.detected_compromised
            # Weights unchanged: still at the MTMW minimum.
            assert routing.effective_weight(1, 2) == net.mtmw.min_weight(1, 2)
        assert 2 not in net.node(4).routing.detected_compromised

    def test_below_min_and_not_endpoint_both_counted(self):
        net = OverlayNetwork.build(ring(4), PACED)
        RoutingWeightAttack(net, attacker=2).launch()
        net.run(2.0)
        results = net.node(1).routing.results
        assert results[UpdateResult.BELOW_MIN_WEIGHT] >= 1
        assert results[UpdateResult.NOT_ENDPOINT] >= 1

    def test_invalid_updates_not_propagated(self):
        """Correct nodes ignore (and never flood) provably bad updates."""
        net = OverlayNetwork.build(ring(4), PACED)
        RoutingWeightAttack(net, attacker=2).launch()
        net.run(2.0)
        results_far = net.node(4).routing.results
        assert all(count == 0 for count in results_far.values())


class TestAckSpam:
    def test_forged_acks_rejected_and_flow_unharmed(self):
        net = OverlayNetwork.build(ring(4), PACED)
        victim = ReliableBacklogTraffic(net, 1, 3, count=60)
        victim.start()
        spam = E2eAckSpamAttack(net, attacker=2, victim_dest=3, interval=0.05)
        spam.start()
        net.run(20.0)
        spam.stop()
        net.run(10.0)
        assert net.delivered_count(1, 3) == 60
        # Forged acks were rejected at signature verification.
        assert net.node(1).invalid_messages_rejected > 0

    def test_own_identity_acks_rate_limited(self):
        net = OverlayNetwork.build(ring(4), PACED)
        spam = E2eAckSpamAttack(net, attacker=2, victim_dest=3, interval=0.01)
        spam.start()
        net.run(3.0)
        spam.stop()
        # Correct nodes saw many, forwarded few: the attacker's identical
        # no-progress acks die one hop out.
        rejected = net.node(1).reliable.acks_rejected
        assert rejected > 10


class TestReplayAttack:
    def test_replays_do_not_duplicate_deliveries(self):
        net = OverlayNetwork.build(ring(4), PACED)
        attack = ReplayAttack(net, attacker=2, copies=2)
        net.compromise(2, attack.capture_behavior())
        for _ in range(10):
            net.client(1).send_priority(3)
        net.run(3.0)
        replayed = attack.replay_all()
        net.run(3.0)
        assert replayed > 0
        assert net.delivered_count(1, 3) == 10


class TestCrashSchedule:
    def test_scripted_crash_and_recovery(self):
        net = OverlayNetwork.build(clique(4), PACED)
        schedule = CrashSchedule(
            net, [CrashEvent(at=1.0, node=2, recover_at=3.0)]
        )
        schedule.arm()
        net.run(2.0)
        assert net.node(2).crashed
        net.run(2.0)
        assert not net.node(2).crashed


class TestPriorityTampering:
    """A Byzantine relay escalating the priority field of messages it
    forwards.  ``Message`` is frozen, so the attacker must rebuild the
    dataclass — but priority is a signed field, so every tampered copy
    fails verification at the next honest hop and is counted, not
    delivered."""

    class _EscalatingRelay:
        """Rewrites every forwarded data message to priority 10."""

        def __init__(self):
            self.tampered = 0

        def filter_incoming(self, payload, neighbor, node):
            return payload

        def filter_outgoing(self, payload, neighbor, node):
            import dataclasses

            from repro.messaging.message import Message

            if isinstance(payload, Message) and payload.source != node.node_id:
                self.tampered += 1
                # The old signature rides along — and no longer matches.
                return dataclasses.replace(payload, priority=10)
            return payload

    def test_tampered_priority_is_rejected_not_delivered(self):
        net = OverlayNetwork.build(ring(4), PACED, seed=2)
        # Compromise both relays on the 1 -> 3 ring so no honest copy
        # survives; every copy reaching 3 has a broken signature.
        relays = {}
        for attacker in (2, 4):
            behavior = self._EscalatingRelay()
            relays[attacker] = behavior
            net.compromise(attacker, behavior)
        for _ in range(5):
            net.client(1).send_priority(3, priority=2)
        net.run(5.0)
        assert sum(b.tampered for b in relays.values()) > 0
        assert net.delivered_count(1, 3) == 0
        assert net.node(3).invalid_messages_rejected > 0

    def test_honest_relay_preserves_delivery_under_partial_tampering(self):
        net = OverlayNetwork.build(ring(4), PACED, seed=2)
        # Only one of the two disjoint ring paths is compromised: the
        # honest copy still arrives, the tampered one is discarded.
        behavior = self._EscalatingRelay()
        net.compromise(2, behavior)
        for _ in range(5):
            net.client(1).send_priority(3, priority=2)
        net.run(5.0)
        assert behavior.tampered > 0
        assert net.delivered_count(1, 3) == 5
        # Delivered copies kept their original (signed) priority.
        recorder = net.stats.series("priority-count:1->3:2")
        assert len(recorder.samples) == 5
