"""Message equality/hash consistency under the slot-cache design.

``Message`` carries per-object derived-value caches (canonical signed
tuple, uid, verify verdict) in ``compare=False`` slots.  Everything that
deduplicates messages — flooding duplicate suppression, the
InvariantMonitor's at-most-once check, per-link queue indexing — relies
on two objects with equal semantic fields staying equal and hash-equal
*regardless of which caches happen to be populated*.  These are the
regression tests for that contract.
"""

from __future__ import annotations

import dataclasses

from repro.faults.invariants import InvariantMonitor
from repro.messaging.message import Message, Semantics
from repro.messaging.priority import PriorityLinkQueue
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators


def _msg(**overrides) -> Message:
    base = dict(
        source="s",
        dest="d",
        seq=7,
        semantics=Semantics.PRIORITY,
        priority=5,
        expiration=100.0,
        size_bytes=512,
        flooding=True,
        sent_at=1.0,
    )
    base.update(overrides)
    return Message(**base)


# ----------------------------------------------------------------------
# Equality / hash invariants of the cache slots themselves
# ----------------------------------------------------------------------
def test_equal_messages_stay_equal_when_caches_diverge():
    warm, cold = _msg(), _msg()
    # Populate every derived-value cache on one object only.
    warm.signed_fields()
    _ = warm.uid
    assert warm == cold
    assert hash(warm) == hash(cold)
    assert warm.uid == cold.uid
    # Hash-based containers must treat them as the same message.
    assert cold in {warm}
    assert {warm: "first"}[cold] == "first"


def test_replace_preserves_identity_and_resets_caches():
    original = _msg()
    _ = original.uid
    copy = dataclasses.replace(original)
    # The cache slots are reinitialized, not copied.
    assert copy._uid_cache is None
    assert copy._signed_fields_cache is None
    assert copy == original
    assert hash(copy) == hash(original)
    assert copy.uid == original.uid


def test_tampered_copy_is_unequal_and_reverifies_cold():
    from repro.crypto.pki import Pki, PkiMode

    pki = Pki(mode=PkiMode.SIMULATED, seed=3)
    pki.register("s")
    signed = _msg().sign(pki)
    assert signed.verify(pki) is True
    assert signed.verify(pki) is True  # cached verdict
    tampered = dataclasses.replace(signed, dest="evil")
    assert tampered != signed
    # The tampered copy starts with cold caches: it must re-verify in
    # full and fail, while the original's cached verdict stands.
    assert tampered.verify(pki) is False
    assert signed.verify(pki) is True
    # An unmodified replace-copy re-verifies cold and still passes.
    assert dataclasses.replace(signed).verify(pki) is True


# ----------------------------------------------------------------------
# Consumers of that contract
# ----------------------------------------------------------------------
def test_priority_queue_dedups_equal_but_distinct_objects():
    queue = PriorityLinkQueue(capacity=8)
    first = _msg()
    twin = dataclasses.replace(first)
    assert queue.offer(first, now=0.0) is True
    # Same uid, different object, cold caches: still a duplicate.
    assert queue.offer(twin, now=0.0) is False
    assert len(queue) == 1


def test_invariant_monitor_flags_equal_object_redelivery():
    net = OverlayNetwork.build(generators.clique(2), OverlayConfig(), seed=0)
    monitor = InvariantMonitor(net)
    monitor.arm()
    dest = sorted(net.topology.nodes)[0]
    message = _msg(source=sorted(net.topology.nodes)[1], dest=dest)
    node = net.node(dest)
    node.deliver_local(message)
    assert monitor.ok
    # A semantically equal copy with cold caches is the same delivery.
    node.deliver_local(dataclasses.replace(message))
    assert not monitor.ok
    assert [v.invariant for v in monitor.violations] == ["no-duplicate-delivery"]


def test_flooding_suppresses_duplicate_from_equal_copy():
    net = OverlayNetwork.build(generators.clique(3), OverlayConfig(), seed=0)
    a, b, c = sorted(net.topology.nodes)
    receiver = net.node(c)
    message = _msg(
        source=a, dest=c, flooding=True, expiration=None, sent_at=0.0
    ).sign(net.pki)
    delivered = []
    receiver.delivery_observers.append(lambda m, n: delivered.append(m.seq))
    receiver.priority.handle(message, from_neighbor=a)
    assert delivered == [message.seq]
    before = receiver.priority.duplicates_suppressed
    # The copy that floods in via the other neighbor is a new object with
    # empty caches; uid-based dedup must still suppress it.
    receiver.priority.handle(dataclasses.replace(message), from_neighbor=b)
    assert delivered == [message.seq]
    assert receiver.priority.duplicates_suppressed == before + 1
