"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.flows == 5
        assert args.semantics == "priority"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "12 nodes, 32 links" in out
        assert "Naive Flooding" in out
        assert "Tokyo" in out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "priority 7->9 delivered: 1/1" in out
        assert "reliable 2->5 delivered: 10/10" in out

    def test_experiment_small(self, capsys):
        assert main([
            "experiment", "--flows", "1", "--seconds", "5",
            "--rate", "0.3", "--semantics", "reliable",
        ]) == 0
        out = capsys.readouterr().out
        assert "dissemination cost" in out
        assert "Mbps" in out

    def test_turret_clean(self, capsys):
        assert main(["turret", "--iterations", "2", "--seconds", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
