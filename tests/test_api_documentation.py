"""Meta-test: every public item in the library carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
enforces it so the property cannot silently regress.
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro


def iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    yield repro
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not undocumented, undocumented


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_every_public_class_method_documented():
    undocumented = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{module.__name__}.{class_name}.{name}")
    assert not undocumented, undocumented
