"""Hypothesis property tests for the admission controller.

Four laws, asserted over arbitrary generated scenarios rather than
hand-picked ones:

1. **Watermark monotonicity** — a constructible config always satisfies
   ``park_low < park_high <= reject_low < reject_high``; any ordering
   that violates it is rejected at construction.  Behaviorally, the
   surge multiplier is non-increasing in load.
2. **No starvation** — a conforming source that offers at or below
   ``floor_min`` is admitted on every offer, no matter what aggressor
   load, load-signal values, or tick timings surround it.
3. **Replace-by-priority never downgrades** — an eviction from the park
   buffer only ever discards an entry of *strictly lower* priority than
   the incoming offer; the minimum parked priority never decreases as a
   result of an eviction.
4. **Conservation** — after every operation,
   ``offered == admitted + released + rejected + evicted + expired +
   cleared + parked_live``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ConfigurationError
from repro.messaging.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionOutcome,
)


class StubClock:
    def __init__(self) -> None:
        self.now = 0.0


def make(config: AdmissionConfig, load: float = 0.0):
    clock = StubClock()
    state = {"load": load}
    controller = AdmissionController(
        config, clock, load_fn=lambda: state["load"]
    )
    return controller, clock, state


# ----------------------------------------------------------------------
# 1. Watermark monotonicity
# ----------------------------------------------------------------------
fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@given(park_low=fractions, park_high=fractions,
       reject_low=fractions, reject_high=fractions)
def test_watermark_ordering_is_enforced_at_construction(
    park_low, park_high, reject_low, reject_high
):
    ordered = (
        0.0 <= park_low < park_high <= reject_low < reject_high <= 1.0
    )
    if ordered:
        config = AdmissionConfig(
            park_low=park_low, park_high=park_high,
            reject_low=reject_low, reject_high=reject_high,
        )
        # The park band sits strictly below the reject band: the
        # controller can never reject without first having parked.
        assert config.park_low < config.park_high
        assert config.park_high <= config.reject_low < config.reject_high
    else:
        with pytest.raises(ConfigurationError):
            AdmissionConfig(
                park_low=park_low, park_high=park_high,
                reject_low=reject_low, reject_high=reject_high,
            )


@given(loads=st.lists(fractions, min_size=2, max_size=20),
       surge_max=st.floats(min_value=1.0, max_value=10.0))
def test_surge_multiplier_is_non_increasing_in_load(loads, surge_max):
    controller, _, _ = make(AdmissionConfig(surge_max=surge_max))
    for low, high in zip(sorted(loads), sorted(loads)[1:]):
        assert (
            controller.surge_multiplier(low)
            >= controller.surge_multiplier(high)
        )
    assert controller.surge_multiplier(0.0) == surge_max
    assert controller.surge_multiplier(1.0) == 1.0


# ----------------------------------------------------------------------
# 2. No starvation below the floor
# ----------------------------------------------------------------------
aggressor_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),    # aggressor source id
        st.integers(min_value=1, max_value=10),   # priority
        st.integers(min_value=1, max_value=30),   # offers in this batch
    ),
    max_size=25,
)


@given(
    loads=st.lists(fractions, min_size=1, max_size=25),
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
        min_size=10, max_size=10,
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_conforming_source_below_floor_is_never_rejected(loads, gaps, data):
    config = AdmissionConfig(
        capacity_rate=100.0, floor_min=4.0, floor_max=40.0,
        burst_tokens=2.0, park_capacity=8, surge_max=2.0,
    )
    controller, clock, state = make(config)
    conforming_period = 1.0 / config.floor_min

    def hostile_churn():
        """Arbitrary aggressor traffic, load swings, and ticks."""
        for source, priority, count in data.draw(aggressor_ops):
            for _ in range(count):
                controller.offer(f"aggressor-{source}", priority, lambda: None)
        state["load"] = data.draw(st.sampled_from(loads))
        controller.tick()

    for gap in gaps:
        hostile_churn()
        # The conforming source offers at most once per floor-min period.
        clock.now += conforming_period + gap
        outcome = controller.offer("conforming", 1, lambda: None)
        assert outcome is AdmissionOutcome.ADMITTED


# ----------------------------------------------------------------------
# 3. Replace-by-priority never downgrades
# ----------------------------------------------------------------------
@given(
    priorities=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=80
    ),
    park_capacity=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=100, deadline=None)
def test_eviction_never_discards_equal_or_higher_priority(
    priorities, park_capacity
):
    config = AdmissionConfig(
        burst_tokens=1.0, park_capacity=park_capacity, park_timeout=1e9
    )
    controller, clock, state = make(config, load=0.55)
    controller.tick()  # PARK state: no release drain interferes
    controller.offer("s", 5, lambda: None)  # exhaust the bucket
    for priority in priorities:
        parked_before = sorted(p for p, _, _ in controller.parked_items())
        evicted_before = controller.evicted
        outcome = controller.offer("s", priority, lambda: None)
        parked_after = sorted(p for p, _, _ in controller.parked_items())
        if controller.evicted > evicted_before:
            # An eviction happened: the buffer was full, the discarded
            # entry had strictly lower priority than the incoming one,
            # and the incoming offer was parked in its place.
            assert len(parked_before) == park_capacity
            assert min(parked_before) < priority
            assert outcome is AdmissionOutcome.PARKED
            assert min(parked_after) >= min(parked_before)
        elif outcome is AdmissionOutcome.REJECTED:
            # Full buffer with nothing strictly lower to evict.
            assert len(parked_before) == park_capacity
            assert min(parked_before) >= priority
        assert len(parked_after) <= park_capacity


# ----------------------------------------------------------------------
# 4. Conservation
# ----------------------------------------------------------------------
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("offer"),
            st.integers(min_value=0, max_value=5),   # source
            st.integers(min_value=1, max_value=10),  # priority
        ),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=3.0,
                      allow_nan=False, allow_infinity=False),
            st.just(0),
        ),
        st.tuples(st.just("tick"), fractions, st.just(0)),
        st.tuples(st.just("clear"), st.just(0.0), st.just(0)),
    ),
    max_size=120,
)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_every_offer_is_accounted_exactly_once(ops):
    config = AdmissionConfig(
        capacity_rate=20.0, floor_min=2.0, floor_max=10.0,
        burst_tokens=2.0, park_capacity=4, park_timeout=0.5,
        release_batch=2,
    )
    controller, clock, state = make(config)
    for kind, a, b in ops:
        if kind == "offer":
            controller.offer(f"s{a}", b, lambda: None)
        elif kind == "advance":
            clock.now += a
        elif kind == "tick":
            state["load"] = a
            controller.tick()
        else:
            controller.clear()
        offered, accounted = controller.balance()
        assert offered == accounted
        assert controller.parked_live >= 0
        assert controller.parked_live <= config.park_capacity


# ----------------------------------------------------------------------
# 5. Two-key (per-destination) metering
# ----------------------------------------------------------------------
two_key_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("offer"),
            st.integers(min_value=0, max_value=5),   # source
            st.integers(min_value=0, max_value=5),   # dest
            st.integers(min_value=1, max_value=10),  # priority
        ),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=3.0,
                      allow_nan=False, allow_infinity=False),
            st.just(0), st.just(0),
        ),
        st.tuples(st.just("tick"), fractions, st.just(0), st.just(0)),
        st.tuples(st.just("clear"), st.just(0.0), st.just(0), st.just(0)),
    ),
    max_size=120,
)


@given(ops=two_key_operations)
@settings(max_examples=100, deadline=None)
def test_two_key_conservation_and_nonnegative_dest_buckets(ops):
    """Conservation holds verbatim with the second (destination) key
    armed, and neither key's bucket ever goes negative: an offer only
    debits both meters when *both* hold a token, so double-counting an
    admit against one bucket is structurally impossible."""
    config = AdmissionConfig(
        capacity_rate=20.0, floor_min=2.0, floor_max=10.0,
        burst_tokens=2.0, park_capacity=4, park_timeout=0.5,
        release_batch=2, per_destination=True,
    )
    controller, clock, state = make(config)
    dests_seen = set()
    for kind, a, b, c in ops:
        if kind == "offer":
            dest = f"d{b}"
            dests_seen.add(dest)
            controller.offer(f"s{a}", c, lambda: None, dest=dest)
        elif kind == "advance":
            clock.now += a
        elif kind == "tick":
            state["load"] = a
            controller.tick()
        else:
            controller.clear()
            dests_seen.clear()
        offered, accounted = controller.balance()
        assert offered == accounted
        assert controller.parked_live >= 0
        for dest in dests_seen:
            tokens = controller.dest_tokens(dest)
            assert tokens is None or tokens >= 0.0
        source_tokens = controller.source_tokens("s0")
        assert source_tokens is None or source_tokens >= 0.0


@given(
    loads=st.lists(fractions, min_size=1, max_size=25),
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
        min_size=10, max_size=10,
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_two_key_conforming_pair_below_floor_is_never_rejected(
    loads, gaps, data
):
    """No starvation under the two-key meter: a conforming
    (source, destination) pair offering at or below ``floor_min`` on
    both keys is admitted on every offer, no matter how hard aggressor
    sources hammer *other* destinations (and their own buckets)."""
    config = AdmissionConfig(
        capacity_rate=100.0, floor_min=4.0, floor_max=40.0,
        burst_tokens=2.0, park_capacity=8, surge_max=2.0,
        per_destination=True,
    )
    controller, clock, state = make(config)
    conforming_period = 1.0 / config.floor_min

    def hostile_churn():
        for source, priority, count in data.draw(aggressor_ops):
            for _ in range(count):
                controller.offer(
                    f"aggressor-{source}", priority, lambda: None,
                    dest=f"hot-{source % 3}",
                )
        state["load"] = data.draw(st.sampled_from(loads))
        controller.tick()

    for gap in gaps:
        hostile_churn()
        clock.now += conforming_period + gap
        outcome = controller.offer(
            "conforming", 1, lambda: None, dest="quiet-dest"
        )
        assert outcome is AdmissionOutcome.ADMITTED
