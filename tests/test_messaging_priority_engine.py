"""Unit tests for the Priority engine's forwarding logic."""

import pytest

from repro.dissemination import flood_targets, path_successors, path_targets
from repro.messaging.message import Message, Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import clique, line, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


class TestDisseminationHelpers:
    def test_flood_targets_excludes_sender(self):
        assert flood_targets([1, 2, 3], from_neighbor=2) == [1, 3]

    def test_flood_targets_source_case(self):
        assert flood_targets([1, 2], from_neighbor=None) == [1, 2]

    def test_naive_includes_sender(self):
        assert flood_targets([1, 2, 3], from_neighbor=2, naive=True) == [1, 2, 3]

    def test_path_successors_at_source(self):
        successors, violations = path_successors(1, ((1, 2, 3), (1, 4, 3)), None)
        assert successors == [2, 4]
        assert violations == 0

    def test_path_successors_at_intermediate(self):
        successors, violations = path_successors(2, ((1, 2, 3), (1, 4, 3)), 1)
        assert successors == [3]
        assert violations == 0

    def test_path_successors_wrong_predecessor_is_violation(self):
        successors, violations = path_successors(2, ((1, 2, 3),), from_neighbor=3)
        assert successors == []
        assert violations == 1

    def test_path_successors_at_destination(self):
        successors, violations = path_successors(3, ((1, 2, 3),), 2)
        assert successors == []
        assert violations == 0

    def test_path_targets_arrival_agnostic(self):
        assert path_targets(2, ((1, 2, 3),)) == [3]
        assert path_targets(1, ((1, 2, 3), (1, 4, 3))) == [2, 4]


class TestEngineCounters:
    def test_duplicates_suppressed_counted(self):
        net = OverlayNetwork.build(clique(4), FAST)
        net.node(1).send_priority(3)
        net.run(1.0)
        total_dups = sum(
            node.priority.duplicates_suppressed for node in net.nodes.values()
        )
        # In a clique of 4 a flooded message reaches every node multiple
        # times; all extra copies are suppressed exactly once each.
        assert total_dups > 0

    def test_originated_and_delivered(self):
        net = OverlayNetwork.build(ring(4), FAST)
        for _ in range(3):
            net.node(1).send_priority(3)
        net.run(1.0)
        assert net.node(1).priority.messages_originated == 3
        assert net.node(3).priority.messages_delivered == 3

    def test_path_violation_counted_on_wrong_predecessor(self):
        """A K-paths message arriving from off-path is not forwarded."""
        net = OverlayNetwork.build(ring(4), FAST)
        message = Message(
            source=1, dest=3, seq=1, semantics=Semantics.PRIORITY,
            priority=5, expiration=100.0, flooding=False,
            paths=((1, 2, 3),),
        ).sign(net.pki)
        # Inject into node 2 as if it came from node 3: the path says the
        # predecessor must be node 1.  Source-based routing refuses it.
        engine = net.node(2).priority
        engine.handle(message, from_neighbor=3)
        net.run(1.0)
        assert engine.path_violations == 1
        assert net.delivered_count(1, 3) == 0

    def test_naive_flooding_forwards_back(self):
        config = OverlayConfig(link_bandwidth_bps=None, naive_flooding=True)
        net = OverlayNetwork.build(ring(4), config)
        net.node(1).send_priority(3)
        net.run(1.0)
        # Every directed edge carries the message once: 8 transmissions.
        assert net.stats.counter("data_transmissions").value == 8

    def test_constrained_flooding_cheaper_than_naive(self):
        results = {}
        for naive in (False, True):
            config = OverlayConfig(link_bandwidth_bps=None, naive_flooding=naive)
            net = OverlayNetwork.build(clique(5), config)
            net.node(1).send_priority(3)
            net.run(1.0)
            results[naive] = net.stats.counter("data_transmissions").value
        assert results[False] < results[True]


class TestDestinationBehaviour:
    def test_destination_does_not_forward_flooded_messages(self):
        net = OverlayNetwork.build(line(3), FAST)
        net.node(1).send_priority(2)  # dest in the middle
        net.run(1.0)
        # Node 2 delivers; it does not push the message on to node 3.
        assert net.delivered_count(1, 2) == 1
        assert net.node(3).priority.duplicates_suppressed == 0
        assert net.node(2).links[3].data_transmissions == 0

    def test_source_does_not_deliver_own_messages(self):
        net = OverlayNetwork.build(ring(4), FAST)
        net.node(1).send_priority(3)
        net.run(1.0)
        assert net.delivered_count(1, 1) == 0
