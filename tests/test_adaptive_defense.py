"""Tests for the feedback-controlled defense (repro.resilience.adaptive).

Property tests pin the belief estimator's contract (monotone in
anomalies, decaying to baseline, hysteresis that cannot oscillate within
one cooldown); deterministic sim runs pin the controller's: the global
budget is never exceeded under the ``full`` chaos preset, suspects get
advanced and tightened, healthy nodes get deferred (strictly less
downtime than the fixed rotation), and the unified config block rejects
out-of-range values.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults.schedule import ChaosSpec
from repro.overlay.config import DefenseConfig, OverlayConfig
from repro.resilience.adaptive import (
    SIGNAL_WEIGHTS,
    AdaptiveDefense,
    BeliefEstimator,
    GlobalBudget,
    SimRecoveryActuator,
)
from repro.workloads.experiment import Deployment

FAST = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

KINDS = sorted(SIGNAL_WEIGHTS)


# ----------------------------------------------------------------------
# Unified config block (satellite: one typed, range-validated block)
# ----------------------------------------------------------------------
class TestDefenseConfig:
    def test_defaults_valid(self):
        config = DefenseConfig()
        assert 0 <= config.belief_low < config.belief_high <= 1
        assert config.recovery_downtime < config.recovery_period

    def test_overlay_config_embeds_defense(self):
        overlay = OverlayConfig()
        assert isinstance(overlay.defense, DefenseConfig)
        # The legacy flat probe knobs delegate into the block.
        assert overlay.probe_backoff_initial == overlay.defense.probe_backoff_initial
        assert overlay.quarantine_probation == overlay.defense.quarantine_probation

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"belief_low": 0.7, "belief_high": 0.6},
            {"belief_high": 1.5},
            {"belief_low": -0.1},
            {"belief_half_life": 0.0},
            {"action_cooldown": -1.0},
            {"control_interval": 0.0},
            {"defer_factor_max": 0.5},
            {"escalate_threshold": 0.1},
            {"tighten_timeout_scale": 0.0},
            {"tighten_timeout_scale": 1.5},
            {"tighten_probation_scale": 0.5},
            {"max_concurrent_down": 0},
            {"max_tightened_nodes": -1},
            {"recovery_period": 1.0, "recovery_downtime": 2.0},
            {"probe_backoff_initial": 0.0},
            {"probe_jitter": 1.5},
            {"quarantine_probation": -1.0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigurationError):
            DefenseConfig(**kwargs)


# ----------------------------------------------------------------------
# Belief estimator properties
# ----------------------------------------------------------------------
class TestBeliefProperties:
    @FAST
    @given(
        kind=st.sampled_from(KINDS),
        counts=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10),
    )
    def test_monotone_in_anomalies_at_fixed_time(self, kind, counts):
        """More anomalies at the same instant never lower the score."""
        estimator = BeliefEstimator()
        last = 0.0
        for count in counts:
            score = estimator.observe("n", kind, count, now=5.0)
            assert score >= last - 1e-12
            assert 0.0 <= score <= 1.0
            last = score

    @FAST
    @given(
        kind=st.sampled_from(KINDS),
        count=st.integers(min_value=1, max_value=50),
        threshold=st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_decays_to_baseline(self, kind, count, threshold):
        """With no further signals the score falls below any positive
        threshold in finitely many half-lives."""
        estimator = BeliefEstimator()
        score = estimator.observe("n", kind, count, now=0.0)
        assert score > 0.0
        # 60 half-lives shrink any score in [0, 1] below 1e-6 * 2**40.
        halves = estimator.config.belief_half_life * 60
        decayed = estimator.score("n", now=halves)
        assert decayed < max(threshold, score * 2.0 ** -50)
        assert decayed <= score

    @FAST
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=10, max_value=80),
    )
    def test_hysteresis_never_oscillates_within_cooldown(self, seed, steps):
        """Suspect/clear transitions are at least one action_cooldown
        apart, whatever the signal pattern."""
        config = DefenseConfig(
            belief_half_life=2.0, action_cooldown=5.0,
            belief_low=0.2, belief_high=0.6,
        )
        estimator = BeliefEstimator(config)
        rng = random.Random(seed)
        now = 0.0
        for _ in range(steps):
            now += rng.uniform(0.1, 3.0)
            if rng.random() < 0.5:
                estimator.observe("n", rng.choice(KINDS), rng.randrange(0, 8), now)
            else:
                estimator.score("n", now)
        transitions = estimator.transitions("n")
        for (t_prev, _), (t_next, _) in zip(transitions, transitions[1:]):
            assert t_next - t_prev >= config.action_cooldown - 1e-9

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            BeliefEstimator().observe("n", "msg.invalid", -1, now=0.0)

    def test_unknown_kind_uses_default_weight(self):
        estimator = BeliefEstimator()
        assert estimator.observe("n", "never-heard-of-it", 1, now=0.0) > 0.0


# ----------------------------------------------------------------------
# Global budget
# ----------------------------------------------------------------------
class TestGlobalBudget:
    def test_caps_and_priorities(self):
        budget = GlobalBudget(max_down=2, max_tightened=1)
        assert budget.acquire_down("a")
        assert budget.acquire_down("a")  # idempotent re-acquire
        assert budget.acquire_down("b")
        assert not budget.acquire_down("c")
        assert budget.down_denied == 1
        budget.release_down("a")
        assert budget.acquire_down("c")
        assert budget.peak_down == 2

    def test_external_downs_count_against_budget(self):
        budget = GlobalBudget(max_down=2, max_tightened=0)
        assert not budget.acquire_down("a", external=2)
        assert budget.acquire_down("a", external=1)
        assert budget.peak_total_down == 2
        assert not budget.acquire_tighten("a")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalBudget(max_down=0, max_tightened=1)
        with pytest.raises(ConfigurationError):
            GlobalBudget(max_down=1, max_tightened=-1)


# ----------------------------------------------------------------------
# Controller on the simulated substrate
# ----------------------------------------------------------------------
def chaos_deployment(seed=0, seconds=40.0, adaptive=True):
    deployment = Deployment(seed=seed)
    deployment.add_chaos(ChaosSpec.full(duration=seconds, intensity=1.0))
    deployment.add_defense(adaptive=adaptive, period=8.0, downtime=0.5)
    for source, dest in [(7, 9), (9, 11)]:
        deployment.add_flow(source, dest, rate_fraction=0.2)
    deployment.run(seconds + 5.0)
    return deployment


class TestBudgetUnderChaos:
    def test_budget_never_exceeded_under_full_preset(self):
        """The acceptance bound: under the full chaos preset the defense
        never holds more than max_concurrent_down nodes down, the armed
        invariant monitor confirms it, and recoveries still happen."""
        deployment = chaos_deployment(seed=0)
        defense = deployment.defense
        limit = defense.config.max_concurrent_down
        assert defense.budget.peak_down <= limit
        assert defense.budget.peak_total_down <= limit
        assert defense.recoveries_completed > 0
        by_invariant = deployment.monitor.summary()["by_invariant"]
        assert "defense-budget" not in by_invariant

    def test_deterministic_across_same_seed_runs(self):
        first = chaos_deployment(seed=3).defense.summary()
        second = chaos_deployment(seed=3).defense.summary()
        assert first == second


class TestLocalController:
    def test_anomalies_raise_belief_and_tighten(self):
        """Telemetry attributed to a node (neighbors' PoR rejections
        facing it) drives its belief over the suspect threshold; the
        controller then tightens vigilance and advances its slot."""
        deployment = Deployment(seed=1)
        monitor_target = 6
        defense = deployment.add_defense(adaptive=True, period=60.0, downtime=0.5)
        network = deployment.network
        for other_id, other in network.nodes.items():
            link = other.links.get(monitor_target)
            if link is not None:
                link.por.macs_rejected += 40
                link.invalid_rx += 10
        deployment.run(5.0)
        assert defense.estimator.score(monitor_target, network.sim.now) > 0.5
        assert defense.estimator.is_suspect(monitor_target)
        assert monitor_target in defense.budget.tightened
        assert defense.advances + defense.escalations >= 1
        # Tightening scaled every neighbor's thresholds toward the node.
        scaled = [
            other.links[monitor_target].timeout_scale
            for other_id, other in network.nodes.items()
            if monitor_target in other.links and other_id != monitor_target
        ]
        assert scaled and all(s < 1.0 for s in scaled)

    def test_vigilance_relaxes_after_decay(self):
        deployment = Deployment(seed=1)
        config = DefenseConfig(
            recovery_period=300.0, belief_half_life=2.0, action_cooldown=1.0
        )
        defense = deployment.add_defense(adaptive=True, config=config)
        network = deployment.network
        for other in network.nodes.values():
            link = other.links.get(6)
            if link is not None:
                link.por.macs_rejected += 40
        deployment.run(3.0)
        assert 6 in defense.budget.tightened
        deployment.run(60.0)  # many half-lives with no new signals
        assert 6 not in defense.budget.tightened
        assert defense.relaxations >= 1

    def test_healthy_nodes_deferred_less_downtime_than_fixed(self):
        """On a quiet network the adaptive controller defers rotations:
        strictly fewer recoveries and strictly less downtime than the
        fixed baseline over the same horizon."""

        def downtime(adaptive):
            deployment = Deployment(seed=2)
            deployment.add_defense(adaptive=adaptive, period=10.0, downtime=0.5)
            deployment.run(60.0)
            summary = deployment.defense.summary()
            return (
                summary["recoveries_completed"],
                summary["total_downtime_seconds"],
            )

        fixed_count, fixed_seconds = downtime(adaptive=False)
        adaptive_count, adaptive_seconds = downtime(adaptive=True)
        assert fixed_count > 0
        assert adaptive_count < fixed_count
        assert adaptive_seconds < fixed_seconds

    def test_defer_bounded_by_stretched_period(self):
        """A healthy node is never deferred past period * defer_factor_max
        since its last recovery: even an all-quiet run still rotates."""
        deployment = Deployment(seed=4)
        config = DefenseConfig(
            recovery_period=10.0, recovery_downtime=0.5, defer_factor_max=2.0
        )
        defense = deployment.add_defense(adaptive=True, config=config)
        deployment.run(65.0)
        # Horizon of 65 s with a 20 s stretched period: every node must
        # have completed at least two rotations.
        assert defense.recoveries_completed >= 2 * len(deployment.network.nodes)

    def test_fixed_baseline_never_defers_or_tightens(self):
        deployment = Deployment(seed=5)
        defense = deployment.add_defense(adaptive=False, period=10.0, downtime=0.5)
        deployment.run(30.0)
        summary = defense.summary()
        assert summary["deferrals"] == 0
        assert summary["tightenings"] == 0
        assert summary["advances"] == 0
        assert summary["recoveries_completed"] > 0

    def test_stop_restores_down_nodes_and_relaxes(self):
        deployment = Deployment(seed=6)
        defense = deployment.add_defense(adaptive=True, period=5.0, downtime=2.0)
        network = deployment.network
        # Run until some node is mid-recovery (down).
        ran = 0.0
        while not defense.budget.down and ran < 20.0:
            deployment.run(0.5)
            ran += 0.5
        assert defense.budget.down, "no recovery started within the horizon"
        defense.stop()
        assert not defense.budget.down
        assert not defense.budget.tightened
        assert all(not node.crashed for node in network.nodes.values())

    def test_recovery_downtime_telemetry_recorded(self):
        deployment = Deployment(seed=7)
        defense = deployment.add_defense(adaptive=False, period=6.0, downtime=0.5)
        deployment.run(20.0)
        stats = deployment.network.stats
        family = stats.series_by_prefix("recovery-downtime:")
        assert family, "no per-node downtime series recorded"
        total = sum(sum(ts.values()) for ts in family.values())
        assert total == pytest.approx(defense.total_downtime_seconds)
        assert stats.metrics.gauge("recovery.downtime_seconds_total").value == (
            pytest.approx(total)
        )


# ----------------------------------------------------------------------
# Variant hygiene on reinstall
# ----------------------------------------------------------------------
class TestSimActuator:
    def test_fresh_variant_and_clean_behavior_per_reinstall(self):
        from repro.byzantine.behaviors import DroppingBehavior

        deployment = Deployment(seed=8)
        network = deployment.network
        network.compromise(10, DroppingBehavior())
        actuator = SimRecoveryActuator(network)
        before = actuator.current_variant[10]
        actuator.take_down(10)
        actuator.restore(10)
        after = actuator.current_variant[10]
        assert after != before
        assert actuator.compromises_cleaned == 1
        from repro.byzantine.behaviors import HonestBehavior

        assert isinstance(network.node(10).behavior, HonestBehavior)


# ----------------------------------------------------------------------
# The live substrate (real asyncio/UDP sockets)
# ----------------------------------------------------------------------
def run_live_with_recovery(recovery: str, duration: float = 3.0):
    import dataclasses

    from repro.runtime.live import LiveConfig, run_live

    defense = DefenseConfig(
        recovery_period=1.5, recovery_downtime=0.2, control_interval=0.1,
        action_cooldown=0.5, belief_half_life=2.0,
    )
    overlay = dataclasses.replace(LiveConfig().overlay, defense=defense)
    return run_live(LiveConfig(
        nodes=4, duration=duration, seed=5, rate_msgs_per_sec=10.0,
        overlay=overlay, recovery=recovery,
    ))


class TestLiveSubstrate:
    def test_fixed_rotation_recovers_through_supervisor(self):
        """recovery="fixed" rotates every node through a supervised
        kill/hold/release reinstall, within budget, zero violations."""
        report = run_live_with_recovery("fixed")
        assert not report.runtime_errors, report.runtime_errors
        summary = report.adaptive
        assert summary is not None and summary["adaptive"] is False
        assert summary["recoveries_completed"] > 0
        assert summary["budget"]["peak_down"] <= summary["budget"]["max_down"]
        assert report.violations == 0
        assert report.supervision["kills"] >= summary["recoveries_completed"]
        assert report.to_dict()["adaptive"] == summary

    def test_adaptive_defers_healthy_live_nodes(self):
        """On a clean localhost run the adaptive controller defers:
        (almost) no reinstalls, strictly less downtime than fixed pays."""
        report = run_live_with_recovery("adaptive")
        assert not report.runtime_errors, report.runtime_errors
        summary = report.adaptive
        assert summary is not None and summary["adaptive"] is True
        assert summary["deferrals"] > 0
        assert summary["recoveries_completed"] <= 1
        assert report.violations == 0


# ----------------------------------------------------------------------
# Satellite: per-node supervision jitter streams
# ----------------------------------------------------------------------
class TestSupervisionJitterSeeding:
    def test_backoff_jitter_is_per_node_deterministic(self):
        """A node's backoff sequence is a pure function of the run seed
        and its own kill count — independent of other nodes' kills."""
        from repro.sim.rng import RngRegistry
        from repro.runtime.supervision import NodeRecord, NodeSupervisor

        class FakeSim:
            def __init__(self, seed):
                self.rngs = RngRegistry(seed)
                self.now = 0.0

        class FakeDeployment:
            def __init__(self, seed):
                self.sim = FakeSim(seed)
                self.processes = {}

        def backoffs(kill_order):
            supervisor = NodeSupervisor(FakeDeployment(seed=42))
            out = {}
            for node in kill_order:
                record = NodeRecord()
                out.setdefault(node, [])
                out[node].append(supervisor._next_backoff(node, record))
            return out

        interleaved = backoffs(["a", "b", "a", "b", "a"])
        solo = backoffs(["a", "a", "a"])
        assert interleaved["a"] == solo["a"]
