"""Integration tests for the chaos engine, overlay self-healing, and the
invariant monitor (repro.faults.chaos / repro.faults.invariants)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.chaos import ChaosEngine, _edge
from repro.faults.invariants import InvariantMonitor
from repro.faults.schedule import ChaosSpec, Fault, FaultSchedule
from repro.messaging.message import Message, Semantics
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.routing.state import FAILED_WEIGHT
from repro.topology.generators import chordal_ring, clique, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


def manual_schedule(*faults, duration=60.0):
    return FaultSchedule(seed=0, duration=duration, faults=tuple(
        sorted(faults, key=lambda f: f.start)
    ))


def build(topo=None, config=FAST, seed=0):
    return OverlayNetwork.build(topo or chordal_ring(8), config, seed=seed)


class TestQuarantine:
    def test_failed_link_quarantined_within_probe_timeout(self):
        net = build(ring(5))
        net.run(2.0)
        net.fail_link(1, 2)
        # Detection bound: hello_timeout plus one hello tick.
        net.run(net.config.hello_timeout + net.config.hello_interval + 0.1)
        node = net.node(1)
        assert not node.links[2].monitor_up
        assert not node.routing.is_link_usable(1, 2)
        assert node.routing.effective_weight(1, 2) == FAILED_WEIGHT
        assert 2 in net.quarantined_links()[1]

    def test_other_nodes_learn_of_quarantine(self):
        net = build(ring(5))
        net.run(2.0)
        net.fail_link(1, 2)
        net.run(6.0)
        # A remote node's link-state also excludes the quarantined link.
        assert not net.node(4).routing.is_link_usable(1, 2)

    def test_reinstated_after_probation(self):
        net = build(ring(5))
        net.run(2.0)
        net.fail_link(1, 2)
        net.run(6.0)
        link = net.node(1).links[2]
        assert link.quarantine_count == 1
        assert link.probes_sent > 0
        net.restore_link(1, 2)
        # Probe hears the neighbor, probation runs, link reinstated.
        net.run(net.config.probe_backoff_max + net.config.quarantine_probation + 3.0)
        assert link.monitor_up
        assert link.reinstatements == 1
        assert net.node(1).routing.is_link_usable(1, 2)
        assert net.quarantined_links() == {}

    def test_quarantine_stats_counters(self):
        net = build(ring(5))
        net.run(2.0)
        net.fail_link(1, 2)
        net.run(6.0)
        assert net.stats.counter("link_quarantines").value >= 2  # both ends
        net.restore_link(1, 2)
        net.run(10.0)
        assert net.stats.counter("link_reinstatements").value >= 2

    def test_probe_backoff_caps_probe_volume(self):
        net = build(ring(5))
        net.run(2.0)
        net.fail_link(1, 2)
        net.run(6.0)
        link = net.node(1).links[2]
        before = link.probes_sent
        net.run(40.0)
        # Backed off to probe_backoff_max: at most ~1 probe/4 s (+ jitter).
        assert link.probes_sent - before <= 14

    def test_gray_failure_one_direction_quarantines_link(self):
        net = build(ring(5))
        net.run(2.0)
        # Kill 1->2 silently: node 2 stops hearing node 1.
        net.channels[(1, 2)].set_impairment(extra_loss=0.999999999)
        net.run(8.0)
        assert not net.node(2).links[1].monitor_up
        # Effective weight is the max of both reports, so the link is
        # unusable network-wide even though node 1 still hears node 2.
        assert not net.node(1).routing.is_link_usable(1, 2)
        net.channels[(1, 2)].clear_impairment()
        net.run(12.0)
        assert net.node(2).links[1].monitor_up


class TestChaosEngine:
    def test_same_seed_identical_schedule_and_stats(self):
        spec = ChaosSpec.full(duration=40.0, intensity=3.0)
        results = []
        for _ in range(2):
            topo = chordal_ring(8)
            net = build(topo, seed=11)
            schedule = spec.generate(topo, seed=11)
            engine = ChaosEngine(net, schedule)
            engine.arm()
            client = net.client(1)

            def tick(client=client, net=net):
                try:
                    client.send_priority(5, size_bytes=300)
                except Exception:
                    pass
                net.sim.schedule(0.5, tick)

            net.sim.schedule(0.1, tick)
            net.run(50.0)
            results.append((
                schedule.describe(),
                engine.describe_applied(),
                net.delivered_count(1, 5),
                net.stats.counter("link_quarantines").value,
            ))
        assert results[0] == results[1]

    def test_flap_applies_and_heals(self):
        net = build(ring(5))
        schedule = manual_schedule(Fault(1.0, "flap", (1, 2), 3.0))
        ChaosEngine(net, schedule).arm()
        net.run(2.0)
        assert not net.channels[(1, 2)].up
        net.run(3.0)
        assert net.channels[(1, 2)].up

    def test_overlapping_link_faults_refcounted(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "flap", (1, 2), 10.0),
            Fault(2.0, "flap", (1, 2), 2.0),  # ends first; link must stay down
        )
        ChaosEngine(net, schedule).arm()
        net.run(5.0)
        assert not net.channels[(1, 2)].up
        net.run(7.0)
        assert net.channels[(1, 2)].up

    def test_gray_fault_sets_and_clears_impairment(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "gray", (1, 2), 4.0,
                  params=(("extra_delay", 0.05), ("extra_loss", 0.3)))
        )
        ChaosEngine(net, schedule).arm()
        net.run(2.0)
        assert net.channels[(1, 2)].impaired
        assert net.channels[(2, 1)].impaired
        net.run(4.0)
        assert not net.channels[(1, 2)].impaired

    def test_noise_fault_projects_onto_loss_and_delay(self):
        # In the simulator, the wire-noise fault's corruption share folds
        # into loss (a corrupted datagram dies at decode/MAC), and
        # dup/reorder have no sim-channel representation.
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "noise", (1, 2), 4.0, params=(
                ("corrupt", 0.5), ("dup", 0.9), ("extra_delay", 0.02),
                ("extra_loss", 0.5), ("reorder", 0.9),
            ))
        )
        engine = ChaosEngine(net, schedule)
        engine.arm()
        net.run(2.0)
        channel = net.channels[(1, 2)]
        assert channel.impaired
        # 1 - (1-0.5)(1-0.5) = 0.75 composed loss.
        assert channel.extra_loss == pytest.approx(0.75)
        assert channel.extra_delay == pytest.approx(0.02)
        net.run(4.0)
        assert not net.channels[(1, 2)].impaired
        assert engine.counts["noise"] == 1

    def test_noise_and_gray_compose_on_same_edge(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "gray", (1, 2), 10.0,
                  params=(("extra_delay", 0.01), ("extra_loss", 0.2))),
            Fault(2.0, "noise", (1, 2), 2.0, params=(
                ("corrupt", 0.0), ("dup", 0.1), ("extra_delay", 0.01),
                ("extra_loss", 0.5), ("reorder", 0.1),
            )),
        )
        ChaosEngine(net, schedule).arm()
        net.run(3.0)
        channel = net.channels[(1, 2)]
        # 1 - (1-0.2)(1-0.5) = 0.6 while both are active.
        assert channel.extra_loss == pytest.approx(0.6)
        assert channel.extra_delay == pytest.approx(0.02)
        net.run(5.0)
        # The noise fault ended; the gray failure must survive unchanged.
        assert channel.extra_loss == pytest.approx(0.2)
        assert channel.extra_delay == pytest.approx(0.01)

    def test_burst_impairs_all_links_of_node(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "burst", (1,), 2.0, params=(("extra_loss", 0.8),))
        )
        ChaosEngine(net, schedule).arm()
        net.run(1.5)
        for neighbor in net.topology.neighbors(1):
            assert net.channels[(1, neighbor)].impaired
        net.run(2.0)
        for neighbor in net.topology.neighbors(1):
            assert not net.channels[(1, neighbor)].impaired

    def test_crash_and_restart(self):
        net = build(ring(5))
        schedule = manual_schedule(Fault(1.0, "crash", (3,), 4.0))
        ChaosEngine(net, schedule).arm()
        net.run(2.0)
        assert net.node(3).crashed
        net.run(4.0)
        assert not net.node(3).crashed

    def test_partition_cuts_crossing_edges_only(self):
        net = build(clique(5))
        schedule = manual_schedule(Fault(1.0, "partition", (1, 2), 3.0))
        ChaosEngine(net, schedule).arm()
        net.run(2.0)
        assert net.channels[(1, 2)].up          # inside the partition side
        assert not net.channels[(1, 3)].up      # crossing
        assert not net.channels[(2, 4)].up      # crossing
        assert net.channels[(3, 4)].up          # outside
        net.run(3.0)
        assert net.channels[(1, 3)].up

    def test_recovery_refails_links_with_active_faults(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "flap", (2, 3), 20.0),
            Fault(2.0, "crash", (2,), 3.0),
        )
        ChaosEngine(net, schedule).arm()
        net.run(6.0)  # node 2 recovered at t=5, flap still active
        assert not net.node(2).crashed
        assert not net.channels[(2, 3)].up
        net.run(20.0)
        assert net.channels[(2, 3)].up

    def test_arm_twice_rejected(self):
        net = build(ring(5))
        engine = ChaosEngine(net, manual_schedule())
        engine.arm()
        with pytest.raises(ConfigurationError):
            engine.arm()

    def test_unknown_targets_skipped(self):
        net = build(ring(5))
        schedule = manual_schedule(
            Fault(1.0, "flap", (90, 91), 1.0),
            Fault(1.0, "crash", (90,), 1.0),
        )
        engine = ChaosEngine(net, schedule)
        engine.arm()
        net.run(5.0)
        assert engine.skipped == 2
        assert engine.summary()["faults_applied"]["flap"] == 0

    def test_edge_key_is_order_independent(self):
        assert _edge(2, 1) == _edge(1, 2)


class TestInvariantMonitor:
    def test_detects_manufactured_duplicate_delivery(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        message = Message(
            source=1, dest=3, seq=1, semantics=Semantics.PRIORITY,
            size_bytes=100, sent_at=0.0,
        )
        net.node(3).deliver_local(message)
        net.node(3).deliver_local(message)
        assert not monitor.ok
        assert monitor.violations[0].invariant == "no-duplicate-delivery"

    def test_detects_reliable_reordering(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        for seq in (1, 2, 2):
            net.node(3).deliver_local(Message(
                source=1, dest=3, seq=seq, semantics=Semantics.RELIABLE,
                size_bytes=100, sent_at=0.0,
            ))
        assert any(v.invariant == "per-flow-ordering" for v in monitor.violations)

    def test_crash_resets_dedup_horizon(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        message = Message(
            source=1, dest=3, seq=1, semantics=Semantics.PRIORITY,
            size_bytes=100, sent_at=0.0,
        )
        net.node(3).deliver_local(message)
        net.crash(3)
        net.recover(3)
        net.node(3).deliver_local(message)  # fresh incarnation: legitimate
        assert monitor.ok

    def test_clean_chaos_soak_has_no_violations(self):
        topo = chordal_ring(8)
        net = build(topo, seed=2)
        spec = ChaosSpec.full(duration=40.0, intensity=2.0)
        ChaosEngine(net, spec.generate(topo, seed=2)).arm()
        monitor = InvariantMonitor(net)
        monitor.arm()
        client = net.client(1)

        def tick():
            try:
                client.send_priority(5, size_bytes=300)
                client.send_reliable(4, size_bytes=300)
            except Exception:
                pass
            net.sim.schedule(0.4, tick)

        net.sim.schedule(0.1, tick)
        net.run(50.0)
        assert monitor.deliveries_checked > 0
        assert monitor.routing_checks > 0
        assert monitor.ok, monitor.report()

    def test_fairness_floor_flags_starved_flow(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        monitor.arm_fairness(1, 3, min_bps=1000.0, window=2.0, grace=1.0)
        net.run(20.0)  # nothing ever sent on the flow
        assert any(
            v.invariant == "priority-fairness-floor" for v in monitor.violations
        )

    def test_fairness_floor_satisfied_by_traffic(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        monitor.arm_fairness(1, 3, min_bps=1000.0, window=2.0, grace=1.0)
        client = net.client(1)

        def tick():
            client.send_priority(3, size_bytes=500)
            net.sim.schedule(0.2, tick)

        net.sim.schedule(0.0, tick)
        net.run(20.0)
        assert monitor.ok, monitor.report()

    def test_monitor_report_format(self):
        net = build(ring(5))
        monitor = InvariantMonitor(net)
        monitor.arm()
        net.run(3.0)
        report = monitor.report()
        assert "0 violations" in report
        assert monitor.summary()["violations"] == 0


class TestNetworkHelpers:
    def test_impair_link_both_directions(self):
        net = build(ring(5))
        net.impair_link(1, 2, extra_loss=0.5, extra_delay=0.01)
        assert net.channels[(1, 2)].impaired and net.channels[(2, 1)].impaired
        net.clear_link_impairment(1, 2)
        assert not net.channels[(1, 2)].impaired

    def test_quarantined_links_empty_when_healthy(self):
        net = build(ring(5))
        net.run(5.0)
        assert net.quarantined_links() == {}
