"""Unit tests for message and acknowledgment formats."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.crypto.pki import Pki
from repro.errors import ConfigurationError
from repro.messaging.message import (
    E2E_ACK_BASE_SIZE,
    E2E_ACK_ENTRY_SIZE,
    MESSAGE_HEADER_SIZE,
    E2eAck,
    Hello,
    Message,
    NeighborAck,
    Semantics,
    StateRequest,
)
from repro.overlay.config import DisseminationMethod


@pytest.fixture
def pki():
    p = Pki(seed=1)
    for node in (1, 2, 3):
        p.register(node)
    return p


def msg(**kwargs):
    defaults = dict(
        source=1, dest=3, seq=7, semantics=Semantics.PRIORITY,
        priority=5, expiration=10.0, size_bytes=800,
    )
    defaults.update(kwargs)
    return Message(**defaults)


class TestMessageSignatures:
    def test_sign_verify_roundtrip(self, pki):
        signed = msg().sign(pki)
        assert signed.verify(pki)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("dest", 2),
            ("seq", 8),
            ("priority", 10),
            ("expiration", 99.0),
            ("size_bytes", 4000),
            ("flooding", False),
            ("sent_at", 5.0),
            ("source", 2),
        ],
    )
    def test_any_field_tamper_breaks_signature(self, pki, field, value):
        signed = msg().sign(pki)
        tampered = dataclasses.replace(signed, **{field: value})
        assert not tampered.verify(pki)

    def test_path_tamper_breaks_signature(self, pki):
        signed = msg(flooding=False, paths=((1, 2, 3),)).sign(pki)
        rerouted = dataclasses.replace(signed, paths=((1, 3),))
        assert not rerouted.verify(pki)

    def test_payload_is_not_signed_but_size_is(self, pki):
        """The overlay signs sizes and headers; payload integrity is the
        application's concern in the simulator (real Spines signs bytes)."""
        signed = msg(payload=b"a").sign(pki)
        assert dataclasses.replace(signed, payload=b"b").verify(pki)
        assert not dataclasses.replace(signed, size_bytes=801).verify(pki)


class TestMessageProperties:
    def test_uid_distinguishes_semantics_and_flows(self):
        a = msg(semantics=Semantics.PRIORITY)
        b = msg(semantics=Semantics.RELIABLE)
        c = msg(dest=2)
        d = msg(seq=8)
        uids = {a.uid, b.uid, c.uid, d.uid}
        assert len(uids) == 4

    def test_flow(self):
        assert msg().flow == (1, 3)

    def test_wire_size_components(self):
        plain = msg()
        assert plain.wire_size(256) == 800 + MESSAGE_HEADER_SIZE + 256
        pathy = msg(flooding=False, paths=((1, 2, 3), (1, 3)))
        assert pathy.wire_size(0) == 800 + MESSAGE_HEADER_SIZE + 4 * 5

    def test_expiry(self):
        assert msg(expiration=5.0).is_expired(5.1)
        assert not msg(expiration=5.0).is_expired(4.9)
        assert not msg(expiration=None).is_expired(1e9)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_uid_injective_in_seq(self, seq):
        assert msg(seq=seq).uid != msg(seq=seq + 1).uid


class TestE2eAck:
    def test_create_and_verify(self, pki):
        ack = E2eAck.create(pki, 3, stamp=1, by_source={1: 10, 2: 4})
        assert ack.verify(pki)
        assert ack.seq_for(1) == 10
        assert ack.seq_for(2) == 4
        assert ack.seq_for(99) == -1

    def test_tamper_rejected(self, pki):
        ack = E2eAck.create(pki, 3, stamp=1, by_source={1: 10})
        boosted = dataclasses.replace(ack, cumulative=(("1", 99),))
        assert not boosted.verify(pki)

    def test_progress_semantics(self, pki):
        old = E2eAck.create(pki, 3, stamp=1, by_source={1: 10})
        newer = E2eAck.create(pki, 3, stamp=2, by_source={1: 11})
        same = E2eAck.create(pki, 3, stamp=2, by_source={1: 10})
        stale = E2eAck.create(pki, 3, stamp=0, by_source={1: 99})
        assert newer.indicates_progress_over(old)
        assert not same.indicates_progress_over(old)   # no flow advanced
        assert not stale.indicates_progress_over(old)  # older stamp
        assert old.indicates_progress_over(None)

    def test_wire_size_grows_with_entries(self, pki):
        one = E2eAck.create(pki, 3, 1, {1: 1})
        two = E2eAck.create(pki, 3, 1, {1: 1, 2: 1})
        assert one.wire_size == E2E_ACK_BASE_SIZE + E2E_ACK_ENTRY_SIZE
        assert two.wire_size == one.wire_size + E2E_ACK_ENTRY_SIZE

    def test_cumulative_is_sorted_and_canonical(self):
        a = E2eAck.make_cumulative({2: 5, 1: 3})
        b = E2eAck.make_cumulative({1: 3, 2: 5})
        assert a == b == (("1", 3), ("2", 5))


class TestSmallFormats:
    def test_neighbor_ack_size(self):
        ack = NeighborAck(1, ((("1", "3"), 5, 69),))
        assert ack.wire_size > 0

    def test_hello_and_state_request_sizes(self):
        assert Hello.WIRE_SIZE > 0
        assert StateRequest.WIRE_SIZE > 0


class TestDisseminationMethod:
    def test_factories(self):
        assert DisseminationMethod.flooding().is_flooding
        k3 = DisseminationMethod.k_paths(3)
        assert not k3.is_flooding
        assert k3.k == 3

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            DisseminationMethod.k_paths(0)
