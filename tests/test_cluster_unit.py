"""Unit tests for the sharded cluster runtime's process-free pieces.

Everything here runs in this process: spec validation and topology
partitioning, authenticated control-plane frames, signed membership
records and the replay ledger, the pure report rollup (satellite:
deterministic per-shard metrics), the large-topology generator, and the
shared scheduler epoch.  The multi-process paths are covered by
``tests/test_cluster_live.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster.control import (
    control_key,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.deployment import ClusterReport, excluded_nodes, rollup
from repro.cluster.membership import (
    JOIN,
    LEAVE,
    MembershipLedger,
    MembershipRecord,
    membership_key,
    next_join_record,
)
from repro.cluster.spec import ClusterConfig, ShardSpec, partition_topology
from repro.errors import ConfigurationError, LiveRuntimeError
from repro.topology.generators import large_overlay
from repro.topology.mtmw import MtmwUpdateResult


# ----------------------------------------------------------------------
# Spec / partitioning
# ----------------------------------------------------------------------
def test_cluster_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=3)
    with pytest.raises(ConfigurationError):
        ClusterConfig(shards=1)
    with pytest.raises(ConfigurationError):
        ClusterConfig(nodes=8, shards=9)
    with pytest.raises(ConfigurationError):
        ClusterConfig(chaos_preset="nope")
    with pytest.raises(ConfigurationError):
        ClusterConfig(flow_stride=0)
    with pytest.raises(ConfigurationError):
        ShardSpec(shard_id=-1, nodes=(1,))
    with pytest.raises(ConfigurationError):
        ShardSpec(shard_id=0, nodes=())


def test_partition_topology_contiguous_and_complete():
    topo = large_overlay(23, seed=5)
    shards = partition_topology(topo, 4)
    assert [s.shard_id for s in shards] == [0, 1, 2, 3]
    sizes = [len(s.nodes) for s in shards]
    assert sum(sizes) == 23
    assert max(sizes) - min(sizes) <= 1
    covered = [n for s in shards for n in s.nodes]
    assert sorted(covered, key=str) == sorted(topo.nodes, key=str)
    assert covered == sorted(topo.nodes, key=str)  # contiguous slices
    # Seed node = first node of each slice, stable across processes.
    for spec in shards:
        assert spec.seed_node == spec.nodes[0]


# ----------------------------------------------------------------------
# Control-plane frames
# ----------------------------------------------------------------------
def test_control_frame_roundtrip_and_forgery():
    key = control_key(42)
    body = {"kind": "heartbeat", "shard_id": 1, "now": 2.5}
    frame = encode_frame(key, body)
    assert decode_frame(key, frame[4:]) == body
    # A different run's key (or an attacker without the key) is rejected.
    with pytest.raises(LiveRuntimeError):
        decode_frame(control_key(43), frame[4:])
    # Bit-flipping the body without re-MACing is rejected.
    tampered = frame[4:].replace(b'"shard_id": 1', b'"shard_id": 2')
    assert tampered != frame[4:]  # the replace actually hit
    with pytest.raises(LiveRuntimeError):
        decode_frame(key, tampered)
    with pytest.raises(LiveRuntimeError):
        decode_frame(key, b"not json at all")


def test_control_frames_over_real_stream():
    async def check():
        key = control_key(7)
        received = []
        done = asyncio.Event()

        async def on_connect(reader, writer):
            received.append(await read_frame(reader, key))
            received.append(await read_frame(reader, key))
            writer.close()
            done.set()

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        await write_frame(writer, key, {"kind": "hello", "shard_id": 0})
        await write_frame(writer, key, {"kind": "ready", "big": "x" * 5000})
        await asyncio.wait_for(done.wait(), 5.0)
        writer.close()
        server.close()
        await server.wait_closed()
        assert received[0] == {"kind": "hello", "shard_id": 0}
        assert received[1]["big"] == "x" * 5000

    asyncio.run(check())


# ----------------------------------------------------------------------
# Signed membership
# ----------------------------------------------------------------------
def test_membership_record_sign_verify_and_forgery():
    key = membership_key(3)
    record = MembershipRecord(JOIN, 25, 2, ((1, 0.01), (7, 0.02))).signed(key)
    assert record.verify(key)
    # Unsigned, wrong-key, and field-tampered records all fail.
    assert not MembershipRecord(JOIN, 25, 2, ((1, 0.01),)).verify(key)
    assert not record.verify(membership_key(4))
    tampered = MembershipRecord(
        record.action, 26, record.seqno, record.links, record.signature
    )
    assert not tampered.verify(key)
    # Wire round-trip preserves the signature bit-for-bit.
    again = MembershipRecord.from_dict(record.to_dict())
    assert again == record and again.verify(key)


def test_membership_record_validation():
    with pytest.raises(ConfigurationError):
        MembershipRecord("evict", 5, 2)
    with pytest.raises(ConfigurationError):
        MembershipRecord(LEAVE, 5, 1)  # seqno 1 is the boot MTMW
    with pytest.raises(ConfigurationError):
        MembershipRecord(JOIN, 5, 2)  # join without anchors


def test_membership_ledger_replay_protection():
    key = membership_key(9)
    ledger = MembershipLedger(key)
    join = next_join_record([1, 2, 3], 2, ((1, 0.01),)).signed(key)
    assert join.node == 4  # max(existing) + 1
    assert ledger.consider(join) is MtmwUpdateResult.ACCEPTED
    # Replay of the same (or any older) seqno is STALE.
    assert ledger.consider(join) is MtmwUpdateResult.STALE
    leave_forged = MembershipRecord(LEAVE, 2, 3).signed(membership_key(8))
    assert ledger.consider(leave_forged) is MtmwUpdateResult.BAD_SIGNATURE
    leave = MembershipRecord(LEAVE, 2, 3).signed(key)
    assert ledger.consider(leave) is MtmwUpdateResult.ACCEPTED
    summary = ledger.summary()
    assert summary["last_seqno"] == 3
    assert summary["rejected_stale"] == 1
    assert summary["rejected_forged"] == 1
    assert [r["node"] for r in summary["accepted"]] == [4, 2]


# ----------------------------------------------------------------------
# Report rollup (deterministic per-shard metrics)
# ----------------------------------------------------------------------
def _canned_shard_reports():
    """Two shards: shard 0 sources 1->3 (cross-shard) and 2->1 (local);
    shard 1 sources 3->2 and hosts the delivery recorders for dest 3."""
    return {
        0: {
            "flows": [
                {"source": 1, "dest": 3, "semantics": "priority",
                 "sent": 10, "post_join": False},
                {"source": 2, "dest": 1, "semantics": "reliable",
                 "sent": 4, "post_join": True},
            ],
            "per_node": {
                "1": {"latency": {"latency:2->1": {"count": 4, "mean": 0.002}}},
                "2": {"latency": {}},
            },
            "supervision": {"crashed_nodes": ["2"], "departed": []},
            "chaos": {"faulted_nodes": ["4"]},
            "invariants": {"violations": 1},
        },
        1: {
            "flows": [
                {"source": 3, "dest": 2, "semantics": "priority", "sent": 0},
            ],
            "per_node": {
                "3": {"latency": {"latency:1->3": {"count": 9, "mean": 0.005}}},
                "4": {},
            },
            "departed": ["5"],
        },
    }


def test_rollup_joins_sent_and_delivered_across_shards():
    flows = rollup(_canned_shard_reports())
    # Deterministic: shard order, then the shard's own flow order, with
    # every flow tagged by its source shard id.
    assert json.dumps(flows, sort_keys=True) == json.dumps([
        {"source": 1, "dest": 3, "semantics": "priority", "post_join": False,
         "shard": 0, "sent": 10, "delivered": 9, "ratio": 0.9,
         "mean_latency": 0.005},
        {"source": 2, "dest": 1, "semantics": "reliable", "post_join": True,
         "shard": 0, "sent": 4, "delivered": 4, "ratio": 1.0,
         "mean_latency": 0.002},
        {"source": 3, "dest": 2, "semantics": "priority", "post_join": False,
         "shard": 1, "sent": 0, "delivered": 0, "ratio": 1.0,
         "mean_latency": None},
    ], sort_keys=True)


def test_rollup_dead_destination_shard_counts_zero():
    reports = _canned_shard_reports()
    del reports[1]  # the shard hosting dest 3 died without reporting
    flows = rollup(reports)
    cross = next(f for f in flows if f["dest"] == 3)
    assert cross["delivered"] == 0 and cross["ratio"] == 0.0


def test_excluded_nodes_union():
    excluded = excluded_nodes(_canned_shard_reports(), dead_nodes={"9"})
    assert excluded == {"2", "4", "5", "9"}


def test_cluster_report_gates_and_dict_shape():
    reports = _canned_shard_reports()
    report = ClusterReport(
        nodes=5, shards=2, duration=4.0, seed=0, topology_edges=7,
        wall_seconds=4.5, flows=rollup(reports),
        shard_reports={str(k): v for k, v in reports.items()},
        joined=[6], departed=[5], membership_events=[],
        excluded=sorted(excluded_nodes(reports)), failures=[],
    )
    assert report.delivery_ratio == pytest.approx(13 / 14)
    # Correct-flow gating drops every flow touching 2, 4, or 5: only
    # 1->3 remains.
    assert [f["source"] for f in report.correct_flows] == [1]
    assert report.correct_flow_ratio == pytest.approx(0.9)
    # Post-join flow 2->1 touches crashed node 2: excluded, so the
    # post-join gate has no accountable flows and reports 1.0.
    assert report.post_join_flows == []
    assert report.post_join_ratio == 1.0
    assert report.violations == 1
    assert not report.failed and not report.ok  # violations fail ok
    data = report.to_dict()
    assert data["excluded_nodes"] == ["2", "4", "5"]
    json.dumps(data)  # JSON-serializable end to end


# ----------------------------------------------------------------------
# Generated large topologies
# ----------------------------------------------------------------------
def test_large_overlay_deterministic_and_mtmw_valid():
    from repro.crypto.pki import Pki, PkiMode
    from repro.topology.disjoint import max_node_disjoint_paths
    from repro.topology.mtmw import Mtmw

    topo = large_overlay(60, degree=4, chord_fraction=0.15, seed=11)
    again = large_overlay(60, degree=4, chord_fraction=0.15, seed=11)
    assert sorted(topo.edges()) == sorted(again.edges())
    assert sorted(large_overlay(60, seed=12).edges()) != sorted(topo.edges())
    assert len(topo.nodes) == 60
    # Circulant core: every node has at least ``degree`` neighbors.
    assert min(len(topo.neighbors(n)) for n in topo.nodes) >= 4
    pki = Pki(mode=PkiMode.SIMULATED, seed=11)
    for node in topo.nodes:
        pki.register(node)
    mtmw = Mtmw.create(topo, pki, seqno=1)
    assert mtmw.verify(pki)
    # Spot-check the k-connectivity the circulant construction promises.
    for a, b in [(1, 31), (5, 42), (17, 60)]:
        assert max_node_disjoint_paths(topo, a, b) >= 2

    with pytest.raises(Exception):
        large_overlay(4)
    with pytest.raises(Exception):
        large_overlay(20, degree=3)


# ----------------------------------------------------------------------
# Shared scheduler epoch
# ----------------------------------------------------------------------
def test_scheduler_epoch_is_shared_across_instances():
    from repro.runtime.scheduler import AsyncioScheduler

    async def check():
        loop = asyncio.get_event_loop()
        epoch = loop.time() - 10.0  # a coordinator started 10 s ago
        a = AsyncioScheduler(seed=1, loop=loop, epoch=epoch)
        b = AsyncioScheduler(seed=2, loop=loop, epoch=epoch)
        # Both clocks agree (same epoch), so a timestamp taken by a
        # sender in one process is comparable at the receiver in another.
        assert abs(a.now - b.now) < 0.05
        assert a.now >= 10.0
        # Default epoch rebases to "now" instead.
        fresh = AsyncioScheduler(seed=3, loop=loop)
        assert fresh.now < 1.0

    asyncio.run(check())
