"""Unit tests for the multi-ISP underlay, BGP hijack, and rotating DDoS."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.bgp import BgpHijack
from repro.resilience.ddos import RotatingLinkAttack
from repro.resilience.underlay import Underlay, multihomed, single_homed
from repro.topology.generators import ring

FAST = OverlayConfig(link_bandwidth_bps=None)


def square():
    """4-node ring; nodes 1,3 on ISP red, 2,4 on ISP blue."""
    net = OverlayNetwork.build(ring(4), FAST)
    underlay = single_homed(net, {1: "red", 2: "blue", 3: "red", 4: "blue"})
    return net, underlay


def square_multihomed():
    net = OverlayNetwork.build(ring(4), FAST)
    underlay = multihomed(net, {n: ["red", "blue"] for n in (1, 2, 3, 4)})
    return net, underlay


class TestContracts:
    def test_missing_contract_rejected(self):
        net = OverlayNetwork.build(ring(4), FAST)
        with pytest.raises(ConfigurationError):
            Underlay(net, {1: ["red"]})

    def test_combos_single_homed(self):
        _, underlay = square()
        assert underlay.combos(1, 2) == [("red", "blue")]

    def test_combos_multihomed(self):
        _, underlay = square_multihomed()
        assert len(underlay.combos(1, 2)) == 4

    def test_all_links_initially_usable(self):
        _, underlay = square()
        assert len(underlay.usable_links()) == 4
        assert underlay.connected_pairs_fraction() == 1.0


class TestIspMeltdown:
    def test_single_homed_meltdown_kills_links(self):
        net, underlay = square()
        underlay.fail_isp("red")
        # Every link touches a red node: everything is down.
        assert underlay.usable_links() == []
        assert underlay.connected_pairs_fraction() == 0.0

    def test_multihomed_survives_single_meltdown(self):
        net, underlay = square_multihomed()
        underlay.fail_isp("red")
        assert len(underlay.usable_links()) == 4
        assert underlay.connected_pairs_fraction() == 1.0

    def test_restore_isp(self):
        net, underlay = square()
        underlay.fail_isp("red")
        underlay.restore_isp("red")
        assert len(underlay.usable_links()) == 4

    def test_unknown_isp_rejected(self):
        _, underlay = square()
        with pytest.raises(ConfigurationError):
            underlay.fail_isp("mystery")

    def test_meltdown_fails_overlay_channels(self):
        net, underlay = square()
        underlay.fail_isp("red")
        net.client(1).send_priority(3)
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0


class TestBgpHijack:
    def test_hijack_kills_cross_isp_links_only(self):
        net, underlay = square()
        underlay.set_bgp_hijacked(True)
        # All four links are cross-ISP in the single-homed square.
        assert underlay.usable_links() == []

    def test_same_isp_links_survive(self):
        net = OverlayNetwork.build(ring(4), FAST)
        underlay = single_homed(net, {1: "red", 2: "red", 3: "red", 4: "blue"})
        underlay.set_bgp_hijacked(True)
        assert set(underlay.usable_links()) == {(1, 2), (2, 3)}

    def test_multihomed_switches_to_same_isp_combo(self):
        """Multihoming lets the overlay keep every link during a hijack."""
        net, underlay = square_multihomed()
        underlay.set_bgp_hijacked(True)
        assert len(underlay.usable_links()) == 4
        net.client(1).send_priority(3)
        net.run(2.0)
        assert net.delivered_count(1, 3) == 1

    def test_timed_hijack(self):
        net, underlay = square()
        hijack = BgpHijack(net.sim, underlay)
        hijack.schedule(start_at=1.0, duration=2.0)
        net.run(0.5)
        assert len(underlay.usable_links()) == 4
        net.run(1.0)  # t = 1.5: hijack active
        assert underlay.usable_links() == []
        net.run(2.0)  # t = 3.5: over
        assert len(underlay.usable_links()) == 4


class TestRotatingDdos:
    def test_single_homed_target_link_stays_dead(self):
        net, underlay = square()
        attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.5)
        attack.start()
        for _ in range(4):
            net.run(0.5)
            assert not underlay.link_usable(1, 2)
        attack.stop()
        assert underlay.link_usable(1, 2)

    def test_multihomed_link_survives_narrow_attack(self):
        """With 4 combos and breadth 1, some combo is always clean."""
        net, underlay = square_multihomed()
        attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], breadth=1)
        attack.start()
        net.run(1.0)
        assert underlay.link_usable(1, 2)

    def test_broad_attack_kills_multihomed_link(self):
        net, underlay = square_multihomed()
        attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], breadth=4)
        attack.start()
        net.run(1.0)
        assert not underlay.link_usable(1, 2)

    def test_overlay_routes_around_attacked_link(self):
        """The Figure 2 point: the overlay delivers although the direct
        Internet path (link 1-2) is persistently broken."""
        net, underlay = square()
        attack = RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.3)
        attack.start()
        net.run(0.1)
        net.client(1).send_priority(2)  # flooding routes via 4-3
        net.run(2.0)
        assert net.delivered_count(1, 2) == 1

    def test_invalid_parameters(self):
        net, underlay = square()
        with pytest.raises(ConfigurationError):
            RotatingLinkAttack(net.sim, underlay, [(1, 2)], rotation_period=0.0)
        with pytest.raises(ConfigurationError):
            RotatingLinkAttack(net.sim, underlay, [(1, 2)], breadth=0)

    def test_unknown_combo_rejected(self):
        _, underlay = square()
        with pytest.raises(TopologyError):
            underlay.set_combo(1, 2, ("green", "green"), up=False)
