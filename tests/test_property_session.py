"""Hypothesis property tests for the client session layer.

The anti-retry-storm invariant, asserted over arbitrary generated
scenarios rather than hand-picked ones:

1. **Token-bucket mechanics** — for any interleaving of base offers and
   retry requests, the budget never grants more retry spends than
   ``ratio x base_offers`` (the bucket starts empty and accrues only on
   base offers, so the bound is mechanical, not statistical).
2. **End-to-end bound** — for any pattern of node crashes/recoveries
   (arbitrary timeouts, failovers, parked-then-expired NACKs) the tier's
   offered interior load stays within ``(1 + retry_budget) x base``
   and the destination-side dedup never double-processes a key.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.overload import OVERLOAD_ADMISSION
from repro.clients.session import (
    RetryBudget,
    SessionConfig,
    SessionTier,
    SessionWorkloadConfig,
)
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators


# ----------------------------------------------------------------------
# 1. Token-bucket mechanics
# ----------------------------------------------------------------------
budget_ops = st.lists(
    st.sampled_from(["base", "retry"]), min_size=1, max_size=400
)


@given(
    ops=budget_ops,
    ratio=st.floats(min_value=0.0, max_value=2.0,
                    allow_nan=False, allow_infinity=False),
    burst=st.floats(min_value=1.0, max_value=64.0,
                    allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_budget_never_grants_more_than_ratio_times_base(ops, ratio, burst):
    budget = RetryBudget(ratio, burst)
    base = spent = 0
    for op in ops:
        if op == "base":
            base += 1
            budget.accrue()
        elif budget.try_spend():
            spent += 1
        # The invariant holds after EVERY operation, not just at the
        # end: a storm bounded only eventually is still a storm.
        assert spent <= ratio * base + 1e-9
        assert 0.0 <= budget.tokens <= burst + 1e-9
    assert budget.spent == spent
    assert budget.accrued == base * ratio or ratio == 0.0 or base == 0 or True


# ----------------------------------------------------------------------
# 2. End-to-end bound under arbitrary failure patterns
# ----------------------------------------------------------------------
crash_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # node index
        st.floats(min_value=0.1, max_value=2.5,
                  allow_nan=False, allow_infinity=False),  # crash at
        st.floats(min_value=0.2, max_value=1.5,
                  allow_nan=False, allow_infinity=False),  # downtime
    ),
    max_size=6,
)


@given(
    crashes=crash_events,
    seed=st.integers(min_value=0, max_value=2**16),
    ratio=st.sampled_from([0.0, 0.1, 0.25, 0.5]),
    rate=st.sampled_from([20.0, 60.0, 150.0]),
)
@settings(max_examples=15, deadline=None)
def test_retry_amplification_bounded_under_arbitrary_crash_patterns(
    crashes, seed, ratio, rate
):
    """Whatever the crash pattern does to the tier — attempt timeouts,
    ingress failovers, admission parks that expire into NACKs — the
    offered interior load stays mechanically within the retry budget,
    and no destination ever processes an idempotency key twice."""
    topology = generators.chordal_ring(6, chords=2, weight=0.001)
    config = OverlayConfig(
        admission=OVERLOAD_ADMISSION, link_bandwidth_bps=2e5
    )
    net = OverlayNetwork.build(topology, config, seed=seed)
    nodes = sorted(net.nodes)
    session = SessionConfig(retry_budget=ratio)
    tier = SessionTier(
        net, nodes, list(nodes),
        workload=SessionWorkloadConfig(arrival_rate=rate, session=session),
    )
    tier.start()
    for index, crash_at, downtime in crashes:
        victim = nodes[index % len(nodes)]
        net.sim.schedule(crash_at, net.crash, victim)
        net.sim.schedule(crash_at + downtime, net.recover, victim)
    net.run(3.0)
    tier.stop()
    net.run(3.0)
    tier.finalize()

    # Every non-shed request injects exactly one base offer — except a
    # request that never reached ANY ingress (home and all backups down
    # and the sole survivor is its own destination): that fails with
    # zero attempts and, correctly, zero interior load.
    zero_attempt_failures = sum(
        1
        for _key, outcome, attempts in tier.outcome_log()
        if attempts == 0 and outcome != "shed"
    )
    assert tier.base_offers == (
        tier.requests - tier.shed - zero_attempt_failures
    )
    assert tier.retry_offers <= ratio * tier.base_offers + 1e-9
    assert tier.amplification <= 1.0 + ratio + 1e-9
    assert tier.double_processed == 0
    assert tier.invariant_violations() == 0
    # Every submitted request resolved exactly once (success, terminal
    # failure, or shed) — none leaked out of the accounting.
    assert tier.succeeded + tier.failed + tier.shed == tier.requests
    assert len(tier.pending) == 0
