"""Differential sim-vs-live conformance test.

Runs the *same* seeded 4-node scenario — ``live_topology(4)``, the
deployment's :func:`~repro.runtime.live.flow_plan` traffic matrix,
exact-count CBR injection — through both substrates of the runtime seam:

* the discrete-event :class:`~repro.sim.engine.Simulator` via
  :meth:`OverlayNetwork.build`, and
* the real asyncio/UDP :class:`~repro.runtime.live.LiveDeployment`,

then asserts the protocol stack behaved identically where it must
(delivered-message sets, per-flow delivery order, injected counts) and
comparably where wall clock makes exact equality impossible (per-flow
mean latency within a tolerance).  This is the test that would catch a
"fast path" that only exists in one substrate — e.g. a cache keyed off
simulated time, or a pump shortcut that relies on the simulator's
run-to-quiescence behavior.
"""

from __future__ import annotations

import asyncio
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.messaging.message import Message
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.runtime.live import LiveConfig, LiveDeployment, flow_plan, live_topology
from repro.workloads.traffic import CbrTraffic

NODES = 4
MESSAGES_PER_FLOW = 10
RATE_MSGS_PER_SEC = 20.0
SIZE_BYTES = 256
SEED = 0
#: Loopback UDP and a sim with 1 ms edge weights should both deliver in
#: well under this; the bound only needs to absorb CI-runner jitter.
LATENCY_TOLERANCE_SECONDS = 0.5

FlowKey = Tuple[object, object]


class DeliveryLog:
    """Per-flow delivery order and latency, recorded via observers."""

    def __init__(self) -> None:
        self.order: Dict[FlowKey, List[int]] = defaultdict(list)
        self.latencies: Dict[FlowKey, List[float]] = defaultdict(list)

    def record(self, message: Message, node) -> None:
        key = (message.source, message.dest)
        self.order[key].append(message.seq)
        self.latencies[key].append(node.sim.now - message.sent_at)


def _run_sim(flows) -> Tuple[DeliveryLog, List[CbrTraffic]]:
    """The scenario on the discrete-event simulator."""
    log = DeliveryLog()
    net = OverlayNetwork.build(live_topology(NODES), OverlayConfig(), seed=SEED)
    for node in net.nodes.values():
        node.delivery_observers.append(log.record)
    generators = []
    for source, dest, semantics in flows:
        generator = CbrTraffic(
            net,
            source,
            dest,
            rate_bps=RATE_MSGS_PER_SEC * SIZE_BYTES * 8.0,
            size_bytes=SIZE_BYTES,
            semantics=semantics,
            method=DisseminationMethod.flooding(),
            max_messages=MESSAGES_PER_FLOW,
        )
        generators.append(generator)
        generator.start()
    net.sim.run(until=10.0)
    return log, generators


def _run_live() -> Tuple[DeliveryLog, LiveDeployment]:
    """The identical scenario on real asyncio/UDP sockets."""

    async def drive():
        config = LiveConfig(
            nodes=NODES,
            duration=3.0,
            seed=SEED,
            rate_msgs_per_sec=RATE_MSGS_PER_SEC,
            size_bytes=SIZE_BYTES,
            messages_per_flow=MESSAGES_PER_FLOW,
        )
        deployment = LiveDeployment(config)
        log = DeliveryLog()
        await deployment.start()
        # Attaching synchronously after start() is race-free: a delivery
        # needs at least one event-loop turn (a UDP datagram round trip),
        # and we have not yielded to the loop yet.
        for process in deployment.processes.values():
            process.overlay.delivery_observers.append(log.record)
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        return log, deployment

    return asyncio.run(drive())


def test_sim_and_live_agree_on_deliveries():
    flows = flow_plan(sorted(live_topology(NODES).nodes))
    assert len(flows) == NODES  # 4-node clique: every node sources a flow

    sim_log, sim_generators = _run_sim(flows)
    live_log, deployment = _run_live()

    # Both substrates injected exactly the configured message count.
    assert [g.messages_sent for g in sim_generators] == [MESSAGES_PER_FLOW] * len(flows)
    assert [g.messages_sent for g in deployment.traffic] == [MESSAGES_PER_FLOW] * len(flows)
    assert not deployment._runtime_errors

    flow_keys = {(source, dest) for source, dest, _ in flows}
    assert set(sim_log.order) == flow_keys
    assert set(live_log.order) == flow_keys

    for key in sorted(flow_keys, key=str):
        sim_seqs = sim_log.order[key]
        live_seqs = live_log.order[key]
        # Identical delivered-message sets (no losses, no duplicates)...
        assert sorted(sim_seqs) == sorted(live_seqs)
        assert len(set(sim_seqs)) == len(sim_seqs)
        # ...delivered in the same per-flow order on both substrates.
        assert sim_seqs == sorted(sim_seqs)
        assert live_seqs == sim_seqs

    for key in sorted(flow_keys, key=str):
        sim_latencies = sim_log.latencies[key]
        live_latencies = live_log.latencies[key]
        sim_mean = sum(sim_latencies) / len(sim_latencies)
        live_mean = sum(live_latencies) / len(live_latencies)
        assert 0.0 <= sim_mean < LATENCY_TOLERANCE_SECONDS
        assert 0.0 <= live_mean
        assert abs(live_mean - sim_mean) < LATENCY_TOLERANCE_SECONDS


def test_time_until_idle_parity_between_substrates():
    """The live UDP send channel's serializer model must answer
    ``time_until_idle`` exactly like the sim channel for the same send
    sequence and clock — the overlay pump's skip-on-backlog fast path
    keys off this value on both substrates."""
    from repro.link.por import _HelloWrapper
    from repro.messaging.message import Hello
    from repro.runtime.transport import AsyncioUdpTransport, UdpSendChannel
    from repro.sim.channel import Channel, ChannelConfig
    from repro.sim.engine import Simulator

    bandwidth = 1_000_000.0  # 1 Mbit/s: 256 bytes serialize in ~2 ms
    sim = Simulator(seed=SEED)
    sim_channel = Channel(
        sim, ChannelConfig(latency=0.0, bandwidth_bps=bandwidth), name="parity"
    )
    sim_channel.on_receive = lambda packet: None
    transport = AsyncioUdpTransport("n")
    transport.register_peer("peer", ("127.0.0.1", 9))  # never actually sent to
    live_channel = UdpSendChannel(
        transport, "peer", clock=sim, bandwidth_bps=bandwidth
    )

    assert sim_channel.time_until_idle() == live_channel.time_until_idle() == 0.0
    packet = _HelloWrapper(Hello("n", 1))
    for step, size in enumerate((256, 1024, 64, 4096)):
        sim_channel.send(packet, size)
        live_channel.send(packet, size)
        assert sim_channel.time_until_idle() == live_channel.time_until_idle() > 0.0
        if step % 2 == 0:
            # Advance the shared clock partway through the busy window
            # and re-compare mid-drain.
            sim.run(until=sim.now + 0.0005)
            assert sim_channel.time_until_idle() == live_channel.time_until_idle()
    # Drain fully: both sides must agree they are idle again.
    sim.run(until=sim.now + 60.0)
    assert sim_channel.time_until_idle() == live_channel.time_until_idle() == 0.0

    # And without a serialization model (the sim's "infinite bandwidth"
    # setting) both substrates answer 0.0 unconditionally.
    no_model_sim = Channel(
        sim, ChannelConfig(latency=0.0, bandwidth_bps=None), name="parity2"
    )
    no_model_sim.on_receive = lambda packet: None
    no_model_live = UdpSendChannel(transport, "peer", clock=sim, bandwidth_bps=None)
    no_model_sim.send(packet, 10**6)
    no_model_live.send(packet, 10**6)
    assert no_model_sim.time_until_idle() == no_model_live.time_until_idle() == 0.0


# ----------------------------------------------------------------------
# Client-tier admission conformance
# ----------------------------------------------------------------------
#: A pure count-based admission config: ``park_capacity=0`` removes the
#: park buffer (no tick-timing-dependent releases), ``floor_min ==
#: floor_max`` pins the allowance at exactly 4 msgs/s regardless of
#: surge or active-source churn, and a huge idle timeout keeps meters
#: from being re-minted with fresh buckets mid-plan.  Under this config
#: every admission decision is a deterministic function of the offer
#: counts and inter-burst gaps alone — the wall clock only trickles in
#: sub-token refill amounts — so sim and live must agree exactly.
def _admission_config():
    from repro.messaging.admission import AdmissionConfig

    return AdmissionConfig(
        burst_tokens=4.0,
        floor_min=4.0,
        floor_max=4.0,
        surge_max=1.0,
        park_capacity=0,
        source_idle_timeout=100.0,
    )


def _overload_plan():
    """Three clients, two bursts each; gaps of >= 1.5 s per client fully
    refill the 4-token bucket (4 msgs/s * 1.5 s > 4) on any substrate."""
    from repro.clients.generators import ScriptedBurst

    return [
        ScriptedBurst(at=0.2, source=1, client="1/a", dest=3, count=6, priority=5),
        ScriptedBurst(at=0.3, source=2, client="2/a", dest=4, count=3, priority=7),
        ScriptedBurst(at=0.4, source=4, client="4/a", dest=2, count=8, priority=4),
        ScriptedBurst(at=1.8, source=1, client="1/a", dest=3, count=5, priority=5),
        ScriptedBurst(at=1.9, source=2, client="2/a", dest=4, count=7, priority=7),
        ScriptedBurst(at=2.0, source=4, client="4/a", dest=2, count=2, priority=4),
    ]


class ScriptedDeliveryLog:
    """Per-flow delivery order of scripted offers, by payload tag."""

    def __init__(self) -> None:
        self.order: Dict[FlowKey, List[Tuple[int, int]]] = defaultdict(list)

    def record(self, message: Message, node) -> None:
        payload = message.payload
        if isinstance(payload, str) and payload.startswith("scripted:"):
            _, burst, offer = payload.split(":")
            self.order[(message.source, message.dest)].append(
                (int(burst), int(offer))
            )


def _run_scripted_sim():
    from repro.clients.generators import ScriptedOverload

    log = ScriptedDeliveryLog()
    net = OverlayNetwork.build(
        live_topology(NODES),
        OverlayConfig(admission=_admission_config()),
        seed=SEED,
    )
    for node in net.nodes.values():
        node.delivery_observers.append(log.record)
    driver = ScriptedOverload(net, _overload_plan())
    driver.arm(epoch=0.0)
    net.sim.run(until=10.0)
    return log, driver


def _run_scripted_live():
    from repro.clients.generators import ScriptedOverload

    async def drive():
        config = LiveConfig(
            nodes=NODES,
            duration=4.5,
            seed=SEED,
            flow_traffic=False,
            overlay=OverlayConfig(admission=_admission_config()),
        )
        deployment = LiveDeployment(config)
        log = ScriptedDeliveryLog()
        await deployment.start()
        for process in deployment.processes.values():
            process.overlay.delivery_observers.append(log.record)
        driver = ScriptedOverload(deployment, _overload_plan())
        driver.arm()
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        return log, driver

    return asyncio.run(drive())


def test_sim_and_live_agree_on_admission_decisions():
    """The identical scripted overload plan must produce the identical
    per-offer admission outcome log and the identical per-flow delivery
    order on both substrates — the client tier's conformance contract."""
    sim_log, sim_driver = _run_scripted_sim()
    live_log, live_driver = _run_scripted_live()

    # Every offer got a decision, and the decisions agree offer-by-offer.
    planned = sum(burst.count for burst in _overload_plan())
    assert len(sim_driver.outcomes) == planned
    assert sim_driver.outcomes == live_driver.outcomes
    assert sim_driver.admitted_ids() == live_driver.admitted_ids()

    # The expected decisions are computable by hand: the first 4 offers
    # of every burst fit the refilled bucket, the rest are rejected.
    for burst_index, burst in enumerate(_overload_plan()):
        for offer_index in range(burst.count):
            expected = "admitted" if offer_index < 4 else "rejected"
            assert (burst_index, offer_index, expected) in sim_driver.outcomes

    # Admitted offers were all delivered, per flow, in the same order.
    assert set(sim_log.order) == set(live_log.order)
    for key in sorted(sim_log.order, key=str):
        assert sim_log.order[key] == live_log.order[key]
    delivered = sum(len(v) for v in sim_log.order.values())
    assert delivered == len(sim_driver.admitted_ids())


# ----------------------------------------------------------------------
# Client session-layer conformance (incl. typed NACKs)
# ----------------------------------------------------------------------
#: Deterministic admission for the session plan: one burst token per
#: client bucket, a pinned floor, and a park timeout *shorter than the
#: tick interval* so every parked offer expires into a typed NACK at
#: the next tick (the expiry sweep runs before the release drain) —
#: never tick-timing-dependently released.  With ``retry_budget=0`` the
#: session cannot retry, so every offer resolves deterministically:
#: first-in-bucket -> admitted -> ok, second -> parked -> NACK ->
#: failed_budget.  Exact outcome-log equality across substrates follows.
def _session_admission_config():
    from repro.messaging.admission import AdmissionConfig

    return AdmissionConfig(
        burst_tokens=1.0,
        floor_min=0.5,
        floor_max=0.5,
        surge_max=1.0,
        park_capacity=4,
        park_timeout=0.01,
        source_idle_timeout=100.0,
    )


def _session_conformance_config():
    from repro.clients.session import SessionConfig

    return SessionConfig(retry_budget=0.0)


def _session_plan():
    from repro.clients.session import ScriptedSessionRequest

    return [
        # Per home: the first request drains the single-token bucket
        # (admitted -> ok), the immediate second parks and dies into a
        # NACK (-> failed_budget: no retry budget).  The 2.6 s gap
        # refills home 1's bucket (0.5 tok/s), so its third request is
        # admitted again.
        ScriptedSessionRequest(at=0.20, home=1, dest=3),
        ScriptedSessionRequest(at=0.25, home=1, dest=4),
        ScriptedSessionRequest(at=0.30, home=2, dest=4),
        ScriptedSessionRequest(at=0.35, home=2, dest=1),
        ScriptedSessionRequest(at=2.60, home=1, dest=2),
        ScriptedSessionRequest(at=2.65, home=4, dest=2),
    ]


def _session_tier(net):
    from repro.clients.session import SessionTier, SessionWorkloadConfig

    nodes = sorted(net.nodes)
    return SessionTier(
        net,
        nodes,
        list(nodes),
        workload=SessionWorkloadConfig(
            arrival_rate=1.0, session=_session_conformance_config()
        ),
    )


def _run_session_sim():
    net = OverlayNetwork.build(
        live_topology(NODES),
        OverlayConfig(admission=_session_admission_config()),
        seed=SEED,
    )
    tier = _session_tier(net)
    tier.arm(_session_plan(), epoch=0.0)
    net.sim.run(until=10.0)
    tier.finalize()
    return tier


def _run_session_live():
    async def drive():
        config = LiveConfig(
            nodes=NODES,
            duration=4.5,
            seed=SEED,
            flow_traffic=False,
            overlay=OverlayConfig(admission=_session_admission_config()),
        )
        deployment = LiveDeployment(config)
        await deployment.start()
        tier = _session_tier(deployment)
        tier.arm(_session_plan())
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        tier.finalize()
        return tier

    return asyncio.run(drive())


def test_sim_and_live_agree_on_session_outcomes():
    """The identical scripted session plan must produce the identical
    per-request outcome log — key, outcome, attempt count — on both
    substrates, including the requests that resolve via a typed
    admission NACK.  This is the session-layer conformance contract:
    no retry/NACK/dedup behavior may exist on only one substrate."""
    sim_tier = _run_session_sim()
    live_tier = _run_session_live()

    expected_ok = 4
    expected_nacked = 2
    assert sim_tier.outcome_log() == live_tier.outcome_log()
    assert len(sim_tier.outcome_log()) == len(_session_plan())
    outcomes = [outcome for _, outcome, _ in sim_tier.outcome_log()]
    assert outcomes.count("ok") == expected_ok
    assert outcomes.count("failed_budget") == expected_nacked
    # Every resolution took exactly one attempt (budget 0: no retries).
    assert all(attempts == 1 for _, _, attempts in sim_tier.outcome_log())
    for tier in (sim_tier, live_tier):
        assert tier.nacks_consumed == expected_nacked
        assert tier.retry_offers == 0
        assert tier.double_processed == 0
        assert tier.invariant_violations() == 0


def test_typed_nack_crosses_the_real_udp_wire():
    """A NACK whose ``home`` differs from the emitting ingress must be
    carried by the live wire path (payload tag 8) across real UDP
    sockets back to the home node's observers.  Force the home's
    circuit breaker open so attempts fail over to a backup ingress;
    the backup's parked-then-expired offer NACKs back to ``home``."""

    async def drive():
        config = LiveConfig(
            nodes=NODES,
            duration=3.0,
            seed=SEED,
            flow_traffic=False,
            overlay=OverlayConfig(admission=_session_admission_config()),
        )
        deployment = LiveDeployment(config)
        await deployment.start()
        tier = _session_tier(deployment)
        tier._install_observers()
        session = tier.sessions[0]
        breaker = tier.breaker(session.home)
        for _ in range(tier.session_config.breaker_threshold):
            breaker.record_failure(deployment.sim.now)
        dest = sorted(deployment.nodes)[2]
        session.submit(dest)  # drains the backup ingress's bucket
        session.submit(dest)  # parks at the backup -> expires -> NACK
        try:
            await deployment.serve()
        finally:
            await deployment.stop()
        tier.finalize()
        return tier

    tier = asyncio.run(drive())
    assert tier.failovers >= 2  # both attempts bypassed the open home
    assert tier.nacks_consumed >= 1  # the NACK crossed the wire home
    outcomes = [outcome for _, outcome, _ in tier.outcome_log()]
    assert outcomes.count("ok") == 1
    assert outcomes.count("failed_budget") == 1
