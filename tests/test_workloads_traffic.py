"""Unit tests for the traffic generators (workloads/traffic.py).

The generators are the offered-load side of every figure benchmark and
of the live deployment (CbrTraffic is duck-typed over ``.sim`` /
``.node()``), so their rate accounting, back-pressure behavior, and the
exact-count injection used by the sim-vs-live conformance test all get
direct coverage here.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.messaging.message import Semantics
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology import generators
from repro.workloads.traffic import CbrTraffic, PoissonTraffic, ReliableBacklogTraffic

SIZE = 500


def _net(seed=0):
    return OverlayNetwork.build(
        generators.clique(2), OverlayConfig(link_bandwidth_bps=None), seed=seed
    )


def _cbr(net, rate_msgs_per_sec=20.0, **kwargs):
    kwargs.setdefault("size_bytes", SIZE)
    return CbrTraffic(
        net, 1, 2, rate_bps=rate_msgs_per_sec * SIZE * 8.0, **kwargs
    )


# ----------------------------------------------------------------------
# CbrTraffic
# ----------------------------------------------------------------------
def test_cbr_rejects_bad_parameters():
    net = _net()
    with pytest.raises(ConfigurationError):
        CbrTraffic(net, 1, 2, rate_bps=0.0)
    with pytest.raises(ConfigurationError):
        CbrTraffic(net, 1, 2, rate_bps=1000.0, max_messages=0)


def test_cbr_offers_the_configured_rate():
    net = _net()
    traffic = _cbr(net, rate_msgs_per_sec=20.0)
    traffic.start()
    net.sim.run(until=2.0)
    # 20 msg/s for 2 s; the credit model may be one tick shy.
    assert 35 <= traffic.messages_sent <= 40


def test_cbr_priority_credit_does_not_accumulate_while_stopped():
    net = _net()
    traffic = _cbr(net, rate_msgs_per_sec=10.0)
    # Start late: a UDP-like sender gets no retroactive credit for the
    # idle interval (burst is capped at one message's worth).
    traffic.schedule(start_at=5.0, stop_at=6.0)
    net.sim.run(until=10.0)
    assert 1 <= traffic.messages_sent <= 12


def test_cbr_max_messages_stops_injection_exactly():
    net = _net()
    traffic = _cbr(net, rate_msgs_per_sec=50.0, max_messages=7)
    traffic.start()
    delivered = []
    net.node(2).delivery_observers.append(lambda m, n: delivered.append(m.seq))
    net.sim.run(until=5.0)
    assert traffic.messages_sent == 7
    assert traffic.running is False
    assert len(delivered) == 7


def test_cbr_reliable_semantics_deliver_in_order():
    net = _net()
    traffic = _cbr(
        net, rate_msgs_per_sec=50.0, semantics=Semantics.RELIABLE, max_messages=9
    )
    traffic.start()
    delivered = []
    net.node(2).delivery_observers.append(lambda m, n: delivered.append(m.seq))
    net.sim.run(until=5.0)
    assert traffic.messages_sent == 9
    assert delivered == sorted(delivered)
    assert len(delivered) == 9


def test_cbr_pauses_while_source_is_crashed():
    net = _net()
    traffic = _cbr(net, rate_msgs_per_sec=20.0)
    traffic.start()
    net.sim.run(until=1.0)
    sent_before = traffic.messages_sent
    net.crash(1)
    net.sim.run(until=3.0)
    assert traffic.messages_sent == sent_before


def test_cbr_priority_cycle_round_robins_levels():
    net = _net()
    traffic = _cbr(net, rate_msgs_per_sec=30.0, priority_cycle=[1, 5, 10])
    traffic.start()
    seen = []
    net.node(2).delivery_observers.append(lambda m, n: seen.append(m.priority))
    net.sim.run(until=1.0)
    assert len(seen) >= 6
    assert seen[:6] == [1, 5, 10, 1, 5, 10]


# ----------------------------------------------------------------------
# PoissonTraffic
# ----------------------------------------------------------------------
def test_poisson_rejects_nonpositive_rate():
    net = _net()
    with pytest.raises(ConfigurationError):
        PoissonTraffic(net, 1, 2, rate_msgs_per_sec=0.0)


def test_poisson_generates_and_stops():
    net = _net()
    traffic = PoissonTraffic(net, 1, 2, rate_msgs_per_sec=30.0, size_bytes=SIZE)
    traffic.start()
    net.sim.run(until=3.0)
    # ~90 expected arrivals; the band is wide enough for any seed.
    assert 30 <= traffic.messages_sent <= 180
    traffic.stop()
    sent = traffic.messages_sent
    net.sim.run(until=6.0)
    assert traffic.messages_sent == sent


def test_poisson_is_deterministic_per_seed():
    def run(seed):
        net = _net(seed=seed)
        traffic = PoissonTraffic(net, 1, 2, rate_msgs_per_sec=25.0, size_bytes=SIZE)
        traffic.start()
        net.sim.run(until=2.0)
        return traffic.messages_sent

    assert run(3) == run(3)


# ----------------------------------------------------------------------
# ReliableBacklogTraffic
# ----------------------------------------------------------------------
def test_reliable_backlog_sends_exactly_count():
    net = _net()
    traffic = ReliableBacklogTraffic(net, 1, 2, count=25, size_bytes=SIZE)
    delivered = []
    net.node(2).delivery_observers.append(lambda m, n: delivered.append(m.seq))
    traffic.start()
    assert not traffic.done or traffic.sent == 25
    net.sim.run(until=10.0)
    assert traffic.done
    assert traffic.sent == 25
    assert delivered == sorted(delivered)
    assert len(delivered) == 25
