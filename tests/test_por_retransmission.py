"""Focused tests for PoR loss recovery: NACKs, fast retransmit, RTO."""

import pytest

from repro.crypto.pki import Pki
from repro.link.por import PorAck, PorConfig, PorData, connect_por_pair
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator


def make_link(seed=0, latency=0.010, loss=0.0, bandwidth=None, config=None):
    sim = Simulator(seed=seed)
    pki = Pki(seed=seed)
    pki.register("a")
    pki.register("b")
    cfg = ChannelConfig(latency=latency, loss_rate=loss, bandwidth_bps=bandwidth)
    ab = Channel(sim, cfg, name="a->b")
    ba = Channel(sim, cfg, name="b->a")
    a, b = connect_por_pair(sim, "a", "b", ab, ba, pki, config=config)
    delivered = []
    b.on_deliver = lambda p, s: delivered.append(p)
    return sim, a, b, delivered


class TestNackRecovery:
    def test_single_loss_recovered_by_nack_not_rto(self):
        """One dropped packet is repaired in ~1 RTT, far below the RTO."""
        config = PorConfig(initial_rto=5.0, min_rto=5.0, max_rto=10.0)
        sim, a, b, delivered = make_link(config=config)
        # Drop exactly the second packet on the wire.
        original = a.out_channel.send
        state = {"count": 0}

        def lossy(pkt, size):
            state["count"] += 1
            if state["count"] == 2:
                return  # swallowed
            original(pkt, size)

        a.out_channel.send = lossy
        for i in range(6):
            a.send(i, 100)
        sim.run(until=1.0)  # << RTO of 5 s
        assert delivered == [0, 1, 2, 3, 4, 5]
        assert a.data_retransmitted >= 1

    def test_nack_lists_all_gaps(self):
        sim, a, b, delivered = make_link()
        captured = []
        original = b.out_channel.send

        def capture(pkt, size):
            if isinstance(pkt, PorAck) and pkt.missing:
                captured.append(pkt.missing)
            original(pkt, size)

        b.out_channel.send = capture
        # Deliver 0, skip 1 and 3, deliver 2 and 4 directly to b.
        for seq in (0, 2, 4):
            record_nonce = None
            # Build packets through a's real path but drop 1 and 3.
        original_a = a.out_channel.send
        a.out_channel.send = lambda pkt, size: (
            original_a(pkt, size)
            if not (isinstance(pkt, PorData) and pkt.seq in (1, 3))
            else None
        )
        for i in range(5):
            a.send(i, 100)
        sim.run(until=0.05)
        assert any(1 in missing or 3 in missing for missing in captured)

    def test_duplicate_cum_acks_trigger_head_retransmit(self):
        config = PorConfig(initial_rto=5.0, min_rto=5.0, max_rto=10.0)
        sim, a, b, delivered = make_link(config=config)
        # Lose the FIRST packet: everything else is out of order at b.
        original = a.out_channel.send
        state = {"count": 0}

        def lossy(pkt, size):
            state["count"] += 1
            if state["count"] == 1:
                return
            original(pkt, size)

        a.out_channel.send = lossy
        for i in range(5):
            a.send(i, 100)
        sim.run(until=1.0)
        assert delivered == [0, 1, 2, 3, 4]

    def test_fast_retransmit_guard_prevents_storms(self):
        """Many duplicate ACKs in one RTT cause at most one retransmit."""
        sim, a, b, _ = make_link(latency=0.050)
        a.send(0, 100)
        a._sample_rtt(0.1)
        record = a._unacked[0]
        before = a.data_retransmitted
        for _ in range(10):
            a._fast_retransmit(0)
        assert a.data_retransmitted <= before + 1


class TestRtoAdaptation:
    def test_srtt_converges_to_path_rtt(self):
        sim, a, b, _ = make_link(latency=0.040)
        for i in range(20):
            a.send(i, 100)
        sim.run(until=3.0)
        assert a._srtt == pytest.approx(0.080, rel=0.2)

    def test_rto_exceeds_srtt_with_margin(self):
        sim, a, b, _ = make_link(latency=0.040)
        for i in range(20):
            a.send(i, 100)
        sim.run(until=3.0)
        assert a._current_rto() >= 1.5 * a._srtt

    def test_karns_algorithm_skips_retransmitted_samples(self):
        config = PorConfig(initial_rto=0.05, min_rto=0.05)
        sim, a, b, _ = make_link(latency=0.100, config=config)  # RTT 200 > RTO
        a.send(0, 100)
        sim.run(until=2.0)
        # The packet was retransmitted (RTO < RTT); its eventual ACK must
        # not poison srtt with a bogus sample.
        assert a.data_retransmitted >= 1
        assert a._srtt is None or a._srtt > 0.05

    def test_backoff_caps_at_max_rto(self):
        config = PorConfig(initial_rto=0.05, min_rto=0.05, max_rto=0.4)
        sim, a, b, _ = make_link(config=config)
        a.out_channel.take_down()
        a.send(0, 100)
        sim.run(until=10.0)
        record = a._unacked[0]
        assert record.rto == 0.4


class TestLossSweep:
    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.30])
    def test_complete_delivery_under_loss(self, loss):
        config = PorConfig(initial_rto=0.2, min_rto=0.05)
        sim, a, b, delivered = make_link(
            seed=3, loss=loss, bandwidth=1e6, config=config
        )
        sent = [0]

        def pump():
            while a.can_accept() and sent[0] < 200:
                a.send(sent[0], 500)
                sent[0] += 1
            if sent[0] < 200:
                delay = a.time_until_ready()
                if delay is not None:
                    sim.schedule(max(delay, 1e-4), pump)

        a.on_ready = pump
        pump()
        sim.run(until=120.0)
        assert delivered == list(range(200))
