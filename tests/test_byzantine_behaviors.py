"""Unit tests for the composable Byzantine interception behaviours."""

import random

import pytest

from repro.byzantine.behaviors import (
    CorruptingBehavior,
    DelayingBehavior,
    DroppingBehavior,
    DuplicatingBehavior,
    HonestBehavior,
    ReorderingBehavior,
    SelectiveDropBehavior,
    StackedBehavior,
)
from repro.messaging.message import Message, Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import line, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


def pmsg(seq=1, source=1, dest=3):
    return Message(source=source, dest=dest, seq=seq,
                   semantics=Semantics.PRIORITY, expiration=100.0)


class TestHonest:
    def test_passes_everything_through(self):
        behavior = HonestBehavior()
        message = pmsg()
        assert behavior.filter_outgoing(message, 2, None) is message
        assert behavior.filter_incoming(message, 2, None) is message


class TestDropping:
    def test_drops_data_keeps_control(self):
        behavior = DroppingBehavior()
        assert behavior.filter_outgoing(pmsg(), 2, None) is None
        assert behavior.filter_outgoing("control", 2, None) == "control"
        assert behavior.dropped == 1

    def test_control_too(self):
        behavior = DroppingBehavior(control_too=True)
        assert behavior.filter_outgoing("control", 2, None) is None

    def test_gray_hole_fraction(self):
        behavior = DroppingBehavior(drop_fraction=0.5, rng=random.Random(1))
        outcomes = [behavior.filter_outgoing(pmsg(i), 2, None) for i in range(200)]
        dropped = sum(1 for o in outcomes if o is None)
        assert 60 < dropped < 140


class TestSelectiveDrop:
    def test_predicate_scoping(self):
        behavior = SelectiveDropBehavior(lambda m: m.flow == (1, 3))
        assert behavior.filter_outgoing(pmsg(source=1, dest=3), 2, None) is None
        other = pmsg(source=2, dest=3)
        assert behavior.filter_outgoing(other, 2, None) is other


class TestCorrupting:
    @pytest.mark.parametrize("field", ["priority", "dest", "size", "seq"])
    def test_mutations_break_signature(self, field):
        net = OverlayNetwork.build(ring(4), FAST)
        behavior = CorruptingBehavior(field)
        signed = net.node(1).send_priority(3)
        net.run(1.0)
        mutated = behavior.filter_outgoing(signed, 2, net.node(2))
        assert mutated is not None
        assert not mutated.verify(net.pki)
        assert behavior.corrupted == 1

    def test_control_untouched(self):
        behavior = CorruptingBehavior()
        assert behavior.filter_outgoing("ctl", 2, None) == "ctl"


class TestDelaying:
    def test_messages_held_then_released(self):
        net = OverlayNetwork.build(line(3), FAST)
        net.compromise(2, DelayingBehavior(delay=1.0))
        net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(0.5)
        assert net.delivered_count(1, 3) == 0
        net.run(2.0)
        assert net.delivered_count(1, 3) == 1
        latency = net.flow_latency(1, 3).mean()
        assert latency >= 1.0


class TestDuplicating:
    def test_counts_and_network_dedup(self):
        net = OverlayNetwork.build(line(3), FAST)
        behavior = DuplicatingBehavior(copies=3)
        net.compromise(2, behavior)
        net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert behavior.duplicated == 3
        assert net.delivered_count(1, 3) == 1  # dedup holds


class TestReordering:
    def test_batches_released_in_reverse(self):
        net = OverlayNetwork.build(line(3), FAST)
        net.compromise(2, ReorderingBehavior(batch=3))
        order = []
        net.node(3).on_deliver = lambda m: order.append(m.seq)
        for _ in range(3):
            net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert order == [3, 2, 1]  # reordered but all delivered

    def test_incomplete_batch_held(self):
        net = OverlayNetwork.build(line(3), FAST)
        net.compromise(2, ReorderingBehavior(batch=5))
        net.node(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0


class TestStacked:
    def test_composition_short_circuits_on_drop(self):
        dropper = DroppingBehavior()
        corrupter = CorruptingBehavior()
        stacked = StackedBehavior([dropper, corrupter])
        assert stacked.filter_outgoing(pmsg(), 2, None) is None
        assert corrupter.corrupted == 0  # never reached

    def test_composition_chains(self):
        net = OverlayNetwork.build(ring(4), FAST)
        stacked = StackedBehavior([CorruptingBehavior("priority")])
        signed = net.node(1).send_priority(3)
        out = stacked.filter_outgoing(signed, 2, net.node(2))
        assert out.priority == 10

    def test_incoming_chain(self):
        stacked = StackedBehavior([DroppingBehavior(control_too=True)])
        # DroppingBehavior only filters outgoing; incoming passes through.
        assert stacked.filter_incoming("x", 2, None) == "x"
