"""Integration tests: administrator MTMW redistribution (Section V-A)."""

import pytest

from repro.errors import TopologyError
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import ring
from repro.topology.graph import Topology
from repro.topology.mtmw import Mtmw, MtmwUpdateResult

PACED = OverlayConfig(link_bandwidth_bps=1e6)


def ring_without(n, a, b, weight=0.010):
    topo = ring(n, weight=weight)
    topo.remove_edge(a, b)
    return topo


class TestDistribution:
    def test_new_mtmw_floods_to_every_node(self):
        net = OverlayNetwork.build(ring(5), PACED)
        new_topo = ring(5, weight=0.020)  # raise every minimum weight
        successor = net.distribute_mtmw(new_topo, via=1)
        net.run(2.0)
        for node in net.nodes.values():
            assert node.mtmw.seqno == successor.seqno == 2
            assert node.mtmw.min_weight(1, 2) == 0.020

    def test_replayed_old_mtmw_rejected_everywhere(self):
        net = OverlayNetwork.build(ring(5), PACED)
        original = net.nodes[1].mtmw
        net.distribute_mtmw(ring(5, weight=0.020), via=1)
        net.run(2.0)
        # An attacker replays the original (validly signed) MTMW.
        result = net.node(3).adopt_mtmw(original)
        assert result is MtmwUpdateResult.STALE
        assert net.node(3).mtmw.seqno == 2

    def test_forged_mtmw_rejected(self):
        net = OverlayNetwork.build(ring(5), PACED)
        forged = Mtmw(ring(5, weight=0.001), seqno=9, signature="junk")
        result = net.node(3).adopt_mtmw(forged)
        assert result is MtmwUpdateResult.BAD_SIGNATURE
        assert net.node(3).mtmw.seqno == 1

    def test_new_edge_without_channels_rejected(self):
        net = OverlayNetwork.build(ring(5), PACED)
        bigger = ring(5)
        bigger.add_edge(1, 3, 0.010)  # no physical channels for this
        with pytest.raises(TopologyError):
            net.distribute_mtmw(bigger, via=1)


class TestLinkRemoval:
    def test_removed_link_stops_carrying_traffic(self):
        net = OverlayNetwork.build(ring(4), PACED)
        net.distribute_mtmw(ring_without(4, 1, 2), via=3)
        net.run(2.0)
        before = net.node(1).links[2].data_transmissions
        net.client(1).send_priority(2)
        net.run(2.0)
        # Flooding delivers the long way; the removed link carries no data.
        assert net.delivered_count(1, 2) == 1
        assert net.node(1).links[2].data_transmissions == before

    def test_messages_from_removed_neighbor_rejected(self):
        from repro.byzantine.behaviors import Behavior

        class IgnoreAdministrator(Behavior):
            """A compromised node that refuses MTMW updates."""

            def filter_incoming(self, payload, neighbor, node):
                if isinstance(payload, Mtmw):
                    return None
                return payload

        net = OverlayNetwork.build(ring(4), PACED)
        net.compromise(1, IgnoreAdministrator())
        net.distribute_mtmw(ring_without(4, 1, 2), via=3)
        net.run(2.0)
        assert net.node(1).mtmw.seqno == 1  # stuck on the old topology
        assert net.node(2).mtmw.seqno == 2
        rejected_before = net.node(2).non_neighbor_rejected
        # The stale/compromised node keeps pushing data over the removed
        # edge; its ex-neighbor rejects every message.
        net.node(1).send_priority(3, explicit_paths=((1, 2, 3),))
        net.run(2.0)
        assert net.node(2).non_neighbor_rejected > rejected_before
        assert net.delivered_count(1, 3) == 0

    def test_routing_recomputed_on_new_minimums(self):
        topo = ring(4)
        net = OverlayNetwork.build(topo, PACED)
        # Make edge 1-2 administratively expensive: K=1 reroutes.
        expensive = ring(4)
        expensive.set_weight(1, 2, 1.0)
        net.distribute_mtmw(expensive, via=1)
        net.run(2.0)
        path = net.node(1).routing.shortest_path(1, 2)
        assert path == [1, 4, 3, 2]

    def test_reliable_flow_survives_link_removal(self):
        net = OverlayNetwork.build(ring(4), PACED)
        sent = [0]

        def tick():
            while sent[0] < 60 and net.node(1).send_reliable(3, size_bytes=800):
                sent[0] += 1
            if sent[0] < 60:
                net.sim.schedule(0.05, tick)

        tick()
        net.run(1.0)
        net.distribute_mtmw(ring_without(4, 1, 2), via=1)
        net.run(20.0)
        assert net.delivered_count(1, 3) == 60


class TestReAddingLinks:
    def test_link_can_be_restored_by_later_mtmw(self):
        net = OverlayNetwork.build(ring(4), PACED)
        net.distribute_mtmw(ring_without(4, 1, 2), via=1)
        net.run(2.0)
        net.distribute_mtmw(ring(4), via=1)  # seqno 3: edge is back
        net.run(2.0)
        assert all(node.mtmw.is_edge(1, 2) for node in net.nodes.values())
        net.client(1).send_priority(2, method=DisseminationMethod.k_paths(1))
        net.run(1.0)
        assert net.delivered_count(1, 2) == 1
