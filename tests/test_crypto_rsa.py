"""Unit tests for the from-scratch RSA implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rsa import (
    RsaKeyPair,
    _generate_prime,
    _is_probable_prime,
    generate_keypair,
    keypair_from_seed,
)
from repro.errors import CryptoError, SignatureError

# Module-level fixtures: key generation is the slow part, share it.
KEY = keypair_from_seed(b"test-key", bits=512)
OTHER = keypair_from_seed(b"other-key", bits=512)


class TestPrimality:
    def test_known_primes(self):
        for p in [2, 3, 5, 101, 7919, 104729, (1 << 61) - 1]:
            assert _is_probable_prime(p)

    def test_known_composites(self):
        for c in [1, 4, 100, 7917, 561, 41041, (1 << 61) - 3]:
            assert not _is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for c in [561, 1105, 1729, 2465, 2821, 6601, 8911]:
            assert not _is_probable_prime(c)

    def test_generated_prime_has_exact_bits(self):
        p = _generate_prime(64)
        assert p.bit_length() == 64
        assert _is_probable_prime(p)

    def test_tiny_prime_size_rejected(self):
        with pytest.raises(CryptoError):
            _generate_prime(4)


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        sig = KEY.sign(b"hello world")
        KEY.public.verify(b"hello world", sig)  # no raise

    def test_tampered_message_rejected(self):
        sig = KEY.sign(b"hello world")
        with pytest.raises(SignatureError):
            KEY.public.verify(b"hello worle", sig)

    def test_tampered_signature_rejected(self):
        sig = bytearray(KEY.sign(b"hello"))
        sig[5] ^= 0x01
        assert not KEY.public.is_valid(b"hello", bytes(sig))

    def test_wrong_key_rejected(self):
        sig = KEY.sign(b"msg")
        assert not OTHER.public.is_valid(b"msg", sig)

    def test_wrong_length_signature_rejected(self):
        assert not KEY.public.is_valid(b"msg", b"short")

    def test_out_of_range_representative_rejected(self):
        size = KEY.public.modulus_bytes
        huge = (KEY.public.n + 1).to_bytes(size, "big")
        assert not KEY.public.is_valid(b"msg", huge)

    def test_signature_is_deterministic(self):
        assert KEY.sign(b"abc") == KEY.sign(b"abc")

    def test_signature_size_matches_modulus(self):
        sig = KEY.sign(b"x")
        assert len(sig) == KEY.public.modulus_bytes == KEY.public.signature_size

    def test_empty_message(self):
        sig = KEY.sign(b"")
        assert KEY.public.is_valid(b"", sig)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=256))
    def test_property_roundtrip(self, message):
        sig = KEY.sign(message)
        assert KEY.public.is_valid(message, sig)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    def test_property_cross_message_rejection(self, m1, m2):
        if m1 == m2:
            return
        sig = KEY.sign(m1)
        assert not KEY.public.is_valid(m2, sig)


class TestKeyGeneration:
    def test_generate_keypair_produces_working_key(self):
        key = generate_keypair(bits=512)
        assert key.public.n.bit_length() == 512
        assert key.public.is_valid(b"m", key.sign(b"m"))

    def test_keypair_from_seed_is_deterministic(self):
        k1 = keypair_from_seed(b"seed", bits=256)
        k2 = keypair_from_seed(b"seed", bits=256)
        assert k1.public.n == k2.public.n

    def test_different_seeds_give_different_keys(self):
        k1 = keypair_from_seed(b"seed-a", bits=256)
        k2 = keypair_from_seed(b"seed-b", bits=256)
        assert k1.public.n != k2.public.n

    def test_equal_primes_rejected(self):
        with pytest.raises(CryptoError):
            RsaKeyPair(7919, 7919)

    def test_too_small_modulus_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair(bits=64)

    def test_fingerprint_is_stable_and_short(self):
        fp = KEY.public.fingerprint()
        assert fp == KEY.public.fingerprint()
        assert len(fp) == 16
        assert fp != OTHER.public.fingerprint()
