"""Determinism guarantees of the simulated substrate.

Two layers of defense:

* **Source audit** — wall-clock reads (``time.time`` /
  ``time.perf_counter`` / ``datetime.now``) are allowed only in the
  opt-in profiling paths (the event-loop profiler in ``sim/engine.py``
  and the tracing spans in ``telemetry``) and in the live runtime, which
  is wall-clock by definition.  A stray ``time.time()`` anywhere else
  silently breaks reproducibility, so the audit fails the build instead.
* **End-to-end regression** — the seeded ``repro stats`` report must be
  byte-identical across separate interpreter invocations, including
  under different ``PYTHONHASHSEED`` values (which perturb set/dict
  iteration of str keys — exactly the kind of hidden nondeterminism the
  registry design is supposed to exclude).
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules allowed to read the wall clock, and why.
WALL_CLOCK_ALLOWED = {
    "sim/engine.py",            # opt-in event-loop profiler only
    "telemetry/profiling.py",   # wall-clock profile report
    "telemetry/tracing.py",     # span timing (opt-in)
    "runtime/scheduler.py",     # the live runtime IS wall-clock
    "runtime/live.py",
    "runtime/transport.py",
    "cluster/deployment.py",    # multi-process coordinator: the shared
                                # CLOCK_MONOTONIC epoch it distributes
}

WALL_CLOCK_PATTERN = re.compile(
    r"time\.(?:time|perf_counter|monotonic|process_time)\s*\("
    r"|datetime\.(?:datetime\.)?(?:now|utcnow|today)\s*\("
)


def test_wall_clock_reads_are_confined_to_profiling_and_live_runtime():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in WALL_CLOCK_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if WALL_CLOCK_PATTERN.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock read outside the allowed profiling/live modules "
        "(breaks simulation determinism):\n" + "\n".join(offenders)
    )


def test_sim_engine_wall_clock_is_profiler_gated():
    # The only wall-clock use in the engine must sit behind the
    # ``profiler is None`` fast path; the audit above keeps it from
    # spreading, this pins the specific discipline inside engine.py.
    text = (SRC / "sim" / "engine.py").read_text()
    uses = text.count("time.perf_counter()")
    assert uses == 2, "engine.py should time events only around the profiler"
    assert "if profiler is None:" in text
    assert "time.time()" not in text


def _stats_json(tmp_path: pathlib.Path, tag: str, hashseed: str) -> bytes:
    out = tmp_path / f"stats_{tag}.json"
    result = subprocess.run(
        [
            sys.executable, "-m", "repro", "stats",
            "--seconds", "2", "--flows", "1", "--seed", "11",
            "--output", str(out),
        ],
        env={
            "PYTHONPATH": str(SRC.parent),
            "PYTHONHASHSEED": hashseed,
        },
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return out.read_bytes()


@pytest.mark.slow
def test_seeded_stats_report_is_byte_identical_across_invocations(tmp_path):
    first = _stats_json(tmp_path, "a", hashseed="0")
    second = _stats_json(tmp_path, "b", hashseed="1")
    assert first == second, (
        "seeded `repro stats` output differs between interpreter "
        "invocations — a wall-clock read or hash-order dependency has "
        "crept into the simulated substrate"
    )


def test_poisson_streams_are_isolated_per_instance():
    """Regression: two ``PoissonTraffic`` generators on the same flow
    used to share one named RNG stream, so merely *constructing* (or
    running) a second generator interleaved draws and perturbed the
    first one's seeded arrival sequence.  With per-instance namespaced
    streams the first generator's trajectory is byte-identical whether
    or not a second generator exists — and the first instance keeps the
    historical bare-name stream, so old seeded runs stay reproducible.
    """
    from repro.overlay.config import OverlayConfig
    from repro.overlay.network import OverlayNetwork
    from repro.topology import generators
    from repro.workloads.traffic import PoissonTraffic

    def trajectory(with_second: bool):
        net = OverlayNetwork.build(
            generators.chordal_ring(4, chords=2, weight=0.001),
            OverlayConfig(),
            seed=3,
        )
        first = PoissonTraffic(net, 1, 3, rate_msgs_per_sec=40.0)
        first.start()
        if with_second:
            second = PoissonTraffic(net, 1, 3, rate_msgs_per_sec=40.0)
            second.start()
        counts = []
        for _ in range(20):
            net.run(0.25)
            counts.append(first.messages_sent)
        return counts

    alone = trajectory(with_second=False)
    accompanied = trajectory(with_second=True)
    assert alone == accompanied
    assert alone[-1] > 0

    # And the historical stream name is still owned by the first
    # instance: its raw draw sequence matches the bare named stream.
    from repro.sim.rng import RngRegistry

    registry = RngRegistry(master_seed=3)
    bare = [registry.stream("poisson:1->3").expovariate(40.0) for _ in range(5)]
    fresh = RngRegistry(master_seed=3)
    first_stream = fresh.instance_stream("poisson:1->3")
    second_stream = fresh.instance_stream("poisson:1->3")
    assert [first_stream.expovariate(40.0) for _ in range(5)] == bare
    assert second_stream is not first_stream
