"""Property tests for the live wire codec (:mod:`repro.runtime.wire`).

Two contracts, driven by Hypothesis:

* **Round trip** — for every encodable link packet,
  ``decode(encode(x))`` reproduces ``x`` field-for-field, and encoding
  is deterministic (same object → same bytes).
* **Robustness** — decoding arbitrary, truncated, or bit-flipped input
  either succeeds or raises :class:`repro.errors.WireDecodeError`.  No
  ``struct.error`` / ``IndexError`` / ``UnicodeDecodeError`` may escape:
  a live node drops bad datagrams, it does not crash on them.
"""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.simulated import SimulatedSignature
from repro.errors import WireDecodeError, WireEncodeError
from repro.link.por import PorAck, PorData, PorHandshake, _HelloWrapper
from repro.messaging.message import (
    AdmissionNack,
    E2eAck,
    Hello,
    Message,
    NeighborAck,
    Semantics,
    StateRequest,
)
from repro.routing.link_state import LinkStateUpdate
from repro.runtime.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_BODY,
    VERSION,
    Datagram,
    decode_datagram,
    encode_datagram,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
U32 = st.integers(min_value=0, max_value=2**32 - 1)
SHORT_TEXT = st.text(max_size=40)
NODE_IDS = st.one_of(I64, SHORT_TEXT)
FLOATS = st.floats(allow_nan=False, allow_infinity=False)

SIGNATURES = st.one_of(
    st.none(),
    st.builds(SimulatedSignature, signer=NODE_IDS, tag=I64),
    st.binary(max_size=64),
    I64,
)

MESSAGES = st.builds(
    Message,
    source=NODE_IDS,
    dest=NODE_IDS,
    seq=I64,
    semantics=st.sampled_from([Semantics.PRIORITY, Semantics.RELIABLE]),
    priority=I64,
    expiration=st.one_of(st.none(), FLOATS),
    size_bytes=U32,
    flooding=st.booleans(),
    paths=st.one_of(
        st.none(),
        st.lists(
            st.lists(NODE_IDS, max_size=6).map(tuple), max_size=4
        ).map(tuple),
    ),
    sent_at=FLOATS,
    payload=st.one_of(st.none(), st.binary(max_size=64), SHORT_TEXT),
    signature=SIGNATURES,
)

E2E_ACKS = st.builds(
    E2eAck,
    dest=NODE_IDS,
    stamp=I64,
    cumulative=st.lists(st.tuples(SHORT_TEXT, I64), max_size=8).map(tuple),
    signature=SIGNATURES,
)

NEIGHBOR_ACKS = st.builds(
    NeighborAck,
    sender=NODE_IDS,
    entries=st.lists(
        st.tuples(st.tuples(SHORT_TEXT, SHORT_TEXT), I64, I64), max_size=8
    ).map(tuple),
)

LINK_STATES = st.builds(
    LinkStateUpdate,
    issuer=NODE_IDS,
    edge_a=NODE_IDS,
    edge_b=NODE_IDS,
    weight=FLOATS,
    seqno=I64,
    signature=SIGNATURES,
)

ADMISSION_NACKS = st.builds(
    AdmissionNack,
    ingress=NODE_IDS,
    home=NODE_IDS,
    client=SHORT_TEXT,
    key=SHORT_TEXT,
    outcome=SHORT_TEXT,
    seq=I64,
)

PAYLOADS = st.one_of(
    MESSAGES,
    E2E_ACKS,
    NEIGHBOR_ACKS,
    LINK_STATES,
    st.builds(StateRequest, sender=NODE_IDS),
    st.builds(Hello, sender=NODE_IDS, stamp=I64),
    ADMISSION_NACKS,
)


def _por_data(draw) -> PorData:
    packet = PorData(
        epoch=draw(I64),
        seq=draw(I64),
        nonce=draw(st.binary(max_size=32)),
        payload=draw(PAYLOADS),
        wire_size=draw(U32),
    )
    packet.mac = draw(SIGNATURES)
    return packet


def _por_ack(draw) -> PorAck:
    packet = PorAck(
        epoch=draw(I64),
        cum_seq=draw(I64),
        proof=draw(st.binary(max_size=32)),
        missing=tuple(draw(st.lists(I64, max_size=8))),
    )
    packet.mac = draw(SIGNATURES)
    return packet


ENVELOPES = st.one_of(
    st.composite(_por_data)(),
    st.composite(_por_ack)(),
    st.builds(
        PorHandshake,
        sender=NODE_IDS,
        dh_public=st.binary(max_size=64),
        signature=SIGNATURES,
    ),
    st.builds(Hello, sender=NODE_IDS, stamp=I64).map(_HelloWrapper),
)


def assert_packets_equal(a, b) -> None:
    assert type(a) is type(b)
    if isinstance(a, PorData):
        assert (a.epoch, a.seq, a.nonce, a.wire_size, a.mac) == (
            b.epoch, b.seq, b.nonce, b.wire_size, b.mac
        )
        assert a.payload == b.payload
    elif isinstance(a, PorAck):
        assert (a.epoch, a.cum_seq, a.proof, a.missing, a.mac) == (
            b.epoch, b.cum_seq, b.proof, b.missing, b.mac
        )
    elif isinstance(a, PorHandshake):
        assert (a.sender, a.dh_public, a.signature) == (
            b.sender, b.dh_public, b.signature
        )
    elif isinstance(a, _HelloWrapper):
        assert a.hello == b.hello
    else:  # pragma: no cover - strategy and codec out of sync
        raise AssertionError(f"unexpected packet type {type(a).__name__}")


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
@given(sender=NODE_IDS, receiver=NODE_IDS, packet=ENVELOPES)
@settings(max_examples=200)
def test_round_trip(sender, receiver, packet):
    data = encode_datagram(sender, receiver, packet)
    # Determinism: the codec has no hidden state.
    assert encode_datagram(sender, receiver, packet) == data
    decoded = decode_datagram(data)
    assert isinstance(decoded, Datagram)
    assert decoded.sender == sender
    assert decoded.receiver == receiver
    assert_packets_equal(decoded.packet, packet)
    # Node ids round-trip *typed*: protocol state keys dicts by them.
    assert type(decoded.sender) is type(sender)
    assert type(decoded.receiver) is type(receiver)


# ----------------------------------------------------------------------
# Robustness: truncation, corruption, junk
# ----------------------------------------------------------------------
@given(
    sender=NODE_IDS,
    receiver=NODE_IDS,
    packet=ENVELOPES,
    data=st.data(),
)
@settings(max_examples=200)
def test_truncation_raises_typed_error(sender, receiver, packet, data):
    encoded = encode_datagram(sender, receiver, packet)
    cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    with pytest.raises(WireDecodeError):
        decode_datagram(encoded[:cut])


@given(
    sender=NODE_IDS,
    receiver=NODE_IDS,
    packet=ENVELOPES,
    data=st.data(),
)
@settings(max_examples=200)
def test_corruption_never_escapes_as_primitive_error(
    sender, receiver, packet, data
):
    encoded = bytearray(encode_datagram(sender, receiver, packet))
    position = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    flip = data.draw(st.integers(min_value=1, max_value=255))
    encoded[position] ^= flip
    try:
        decode_datagram(bytes(encoded))
    except WireDecodeError:
        pass  # rejected with the typed error — the only allowed failure


@given(st.binary(max_size=256))
@settings(max_examples=300)
def test_junk_bytes_never_crash(data):
    try:
        decode_datagram(data)
    except WireDecodeError:
        pass


# ----------------------------------------------------------------------
# Header validation specifics
# ----------------------------------------------------------------------
def _valid_datagram() -> bytes:
    return encode_datagram("a", "b", _HelloWrapper(Hello("a", 1)))


def test_bad_magic_rejected():
    data = b"XX" + _valid_datagram()[2:]
    with pytest.raises(WireDecodeError, match="magic"):
        decode_datagram(data)


def test_unknown_version_rejected():
    data = bytearray(_valid_datagram())
    data[2] = VERSION + 1
    with pytest.raises(WireDecodeError, match="version"):
        decode_datagram(bytes(data))


def test_overlength_claim_rejected():
    header = MAGIC + struct.pack(">BBII", VERSION, 0, MAX_BODY + 1, 0)
    with pytest.raises(WireDecodeError, match="maximum"):
        decode_datagram(header + b"\x00" * 16)


def test_length_mismatch_rejected():
    data = _valid_datagram() + b"\x00"
    with pytest.raises(WireDecodeError, match="length mismatch"):
        decode_datagram(data)


def test_trailing_bytes_inside_body_rejected():
    valid = _valid_datagram()
    body = valid[HEADER_SIZE:] + b"\x00"
    header = MAGIC + struct.pack(">BBI", VERSION, 0, len(body))
    data = header + struct.pack(">I", zlib.crc32(header + body)) + body
    with pytest.raises(WireDecodeError, match="trailing"):
        decode_datagram(data)


def test_checksum_mismatch_rejected():
    data = bytearray(_valid_datagram())
    data[-1] ^= 0x40  # flip one bit in the body; header stays plausible
    with pytest.raises(WireDecodeError, match="checksum"):
        decode_datagram(bytes(data))


def test_non_bytes_input_rejected():
    with pytest.raises(WireDecodeError):
        decode_datagram("not bytes")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Encode-side validation
# ----------------------------------------------------------------------
def test_unsupported_envelope_raises_encode_error():
    with pytest.raises(WireEncodeError):
        encode_datagram("a", "b", object())


def test_unsupported_node_id_raises_encode_error():
    with pytest.raises(WireEncodeError):
        encode_datagram(("tuple", "id"), "b", _HelloWrapper(Hello("a", 1)))


def test_oversized_body_raises_encode_error():
    # A 64 KiB application payload pushes the body past MAX_BODY.
    message = Message(
        source="a",
        dest="b",
        seq=1,
        semantics=Semantics.PRIORITY,
        priority=1,
        expiration=None,
        size_bytes=1,
        flooding=True,
        paths=None,
        sent_at=0.0,
        payload=b"x" * 0xFFFF,
        signature=None,
    )
    packet = PorData(epoch=0, seq=0, nonce=b"", payload=message, wire_size=1)
    with pytest.raises(WireEncodeError, match="max"):
        encode_datagram("a", "b", packet)
