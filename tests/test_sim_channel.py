"""Unit tests for channels: latency, bandwidth pacing, loss, failure."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Simulator


def make_channel(sim, **kwargs):
    channel = Channel(sim, ChannelConfig(**kwargs), name="test")
    received = []
    channel.on_receive = lambda pkt: received.append((sim.now, pkt))
    return channel, received


class TestLatency:
    def test_delivery_after_latency(self):
        sim = Simulator()
        channel, received = make_channel(sim, latency=0.050)
        channel.send("hello", size_bytes=100)
        sim.run()
        assert received == [(0.050, "hello")]

    def test_zero_latency_infinite_bandwidth(self):
        sim = Simulator()
        channel, received = make_channel(sim)
        channel.send("x", size_bytes=1)
        sim.run()
        assert received == [(0.0, "x")]


class TestBandwidthPacing:
    def test_serialization_delay(self):
        sim = Simulator()
        # 1000 bytes at 8000 bps = 1 second serialization.
        channel, received = make_channel(sim, bandwidth_bps=8000.0)
        channel.send("a", size_bytes=1000)
        sim.run()
        assert received == [(1.0, "a")]

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        channel, received = make_channel(sim, bandwidth_bps=8000.0)
        channel.send("a", size_bytes=1000)
        channel.send("b", size_bytes=1000)
        sim.run()
        assert received == [(1.0, "a"), (2.0, "b")]

    def test_time_until_idle(self):
        sim = Simulator()
        channel, _ = make_channel(sim, bandwidth_bps=8000.0)
        assert channel.time_until_idle() == 0.0
        channel.send("a", size_bytes=1000)
        assert channel.time_until_idle() == pytest.approx(1.0)

    def test_fifo_with_latency(self):
        sim = Simulator()
        channel, received = make_channel(sim, latency=0.5, bandwidth_bps=8000.0)
        channel.send("a", size_bytes=1000)
        channel.send("b", size_bytes=500)
        sim.run()
        assert [pkt for _, pkt in received] == ["a", "b"]
        assert received[0][0] == pytest.approx(1.5)
        assert received[1][0] == pytest.approx(2.0)

    def test_idle_gap_resets_pacing(self):
        sim = Simulator()
        channel, received = make_channel(sim, bandwidth_bps=8000.0)
        channel.send("a", size_bytes=1000)
        sim.run()
        sim.schedule(10.0, lambda: channel.send("b", size_bytes=1000))
        sim.run()
        # Second packet serializes starting at t=11 (not queued behind "a").
        assert received[1][0] == pytest.approx(12.0)


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        channel, received = make_channel(sim, loss_rate=0.0)
        for i in range(100):
            channel.send(i, size_bytes=10)
        sim.run()
        assert len(received) == 100

    def test_loss_rate_is_approximately_respected(self):
        sim = Simulator(seed=42)
        channel, received = make_channel(sim, loss_rate=0.3)
        n = 5000
        for i in range(n):
            channel.send(i, size_bytes=10)
        sim.run()
        delivered = len(received)
        assert 0.62 * n < delivered < 0.78 * n
        assert channel.packets_lost == n - delivered

    def test_loss_is_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            sim = Simulator(seed=9)
            channel, received = make_channel(sim, loss_rate=0.5)
            for i in range(200):
                channel.send(i, size_bytes=10)
            sim.run()
            outcomes.append([pkt for _, pkt in received])
        assert outcomes[0] == outcomes[1]


class TestAvailability:
    def test_down_channel_drops_packets(self):
        sim = Simulator()
        channel, received = make_channel(sim, latency=0.1)
        channel.take_down()
        channel.send("lost", size_bytes=10)
        sim.run()
        assert received == []
        assert channel.packets_lost == 1

    def test_in_flight_packets_lost_when_channel_fails(self):
        sim = Simulator()
        channel, received = make_channel(sim, latency=1.0)
        channel.send("doomed", size_bytes=10)
        sim.schedule(0.5, channel.take_down)
        sim.run()
        assert received == []

    def test_restore_resumes_delivery(self):
        sim = Simulator()
        channel, received = make_channel(sim, latency=0.1)
        channel.take_down()
        channel.restore()
        channel.send("ok", size_bytes=10)
        sim.run()
        assert [pkt for _, pkt in received] == ["ok"]


class TestJitter:
    def test_jitter_adds_bounded_delay_and_preserves_fifo(self):
        sim = Simulator(seed=5)
        channel, received = make_channel(sim, latency=0.1, jitter=0.05)
        for i in range(50):
            channel.send(i, size_bytes=10)
        sim.run()
        assert [pkt for _, pkt in received] == list(range(50))
        for t, _ in received:
            assert 0.1 <= t  # at least base latency
        times = [t for t, _ in received]
        assert times == sorted(times)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1.0},
            {"bandwidth_bps": 0.0},
            {"bandwidth_bps": -5.0},
            {"loss_rate": 1.0},
            {"loss_rate": -0.1},
            {"jitter": -0.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChannelConfig(**kwargs)

    def test_counters(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.send("a", size_bytes=100)
        channel.send("b", size_bytes=200)
        sim.run()
        assert channel.packets_sent == 2
        assert channel.bytes_sent == 300
        assert channel.packets_delivered == 2
