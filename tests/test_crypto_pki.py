"""Unit tests for the PKI and simulated/real/none signature modes."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.encoding import canonical_bytes
from repro.crypto.pki import ADMIN, Pki, PkiMode
from repro.crypto.simulated import SimulatedSignature
from repro.errors import CryptoError


@pytest.fixture(params=[PkiMode.SIMULATED, PkiMode.REAL])
def pki(request):
    kwargs = {"rsa_bits": 256} if request.param is PkiMode.REAL else {}
    p = Pki(mode=request.param, seed=1, **kwargs)
    p.register(1)
    p.register(2)
    return p


class TestSignVerify:
    def test_roundtrip(self, pki):
        fields = ("msg", 1, 9, 42)
        sig = pki.identity(1).sign(fields)
        assert pki.verify(1, fields, sig)

    def test_tampered_fields_rejected(self, pki):
        fields = ("msg", 1, 9, 42)
        sig = pki.identity(1).sign(fields)
        assert not pki.verify(1, ("msg", 1, 9, 43), sig)

    def test_wrong_signer_claim_rejected(self, pki):
        fields = ("msg", 1, 9, 42)
        sig = pki.identity(1).sign(fields)
        assert not pki.verify(2, fields, sig)

    def test_forged_signature_rejected(self, pki):
        fields = ("msg", 1, 9, 42)
        forged = pki.forge(claimed_signer=1, fields=fields)
        assert not pki.verify(1, fields, forged)

    def test_unknown_signer_rejected(self, pki):
        sig = pki.identity(1).sign(("x",))
        assert not pki.verify(99, ("x",), sig)

    def test_wrong_signature_type_rejected(self, pki):
        assert not pki.verify(1, ("x",), "not-a-signature")

    def test_admin_identity_exists(self, pki):
        sig = pki.admin.sign(("topology", 7))
        assert pki.verify(ADMIN, ("topology", 7), sig)

    def test_signature_wire_size_positive(self, pki):
        assert pki.signature_wire_size > 0


class TestNoneMode:
    def test_none_mode_always_verifies(self):
        pki = Pki(mode=PkiMode.NONE)
        pki.register(1)
        assert pki.identity(1).sign(("x",)) is None
        assert pki.verify(1, ("x",), None)
        assert pki.signature_wire_size == 0


class TestRegistry:
    def test_register_is_idempotent(self):
        pki = Pki()
        a = pki.register("n1")
        b = pki.register("n1")
        assert a is b

    def test_unknown_identity_raises(self):
        pki = Pki()
        with pytest.raises(CryptoError):
            pki.identity("ghost")

    def test_knows(self):
        pki = Pki()
        pki.register(5)
        assert pki.knows(5)
        assert pki.knows(ADMIN)
        assert not pki.knows(6)

    def test_deterministic_across_instances(self):
        p1, p2 = Pki(seed=3), Pki(seed=3)
        p1.register(1)
        p2.register(1)
        sig1 = p1.identity(1).sign(("f",))
        assert p2.verify(1, ("f",), sig1)

    def test_different_seed_means_different_keys(self):
        p1, p2 = Pki(seed=3), Pki(seed=4)
        p1.register(1)
        p2.register(1)
        sig1 = p1.identity(1).sign(("f",))
        assert not p2.verify(1, ("f",), sig1)


class TestLinkSecrets:
    def test_symmetric(self):
        pki = Pki(seed=1)
        assert pki.link_secret(1, 2) == pki.link_secret(2, 1)

    def test_distinct_links_distinct_secrets(self):
        pki = Pki(seed=1)
        assert pki.link_secret(1, 2) != pki.link_secret(1, 3)

    def test_mac_tag_roundtrip(self):
        pki = Pki(seed=1)
        tag = pki.mac_tag(1, 2, ("pkt", 7))
        assert pki.verify_mac_tag(2, 1, ("pkt", 7), tag)
        assert not pki.verify_mac_tag(1, 2, ("pkt", 8), tag)
        assert not pki.verify_mac_tag(1, 3, ("pkt", 7), tag)


class TestSimulatedSignatureWireSize:
    def test_matches_rsa_2048(self):
        assert SimulatedSignature.WIRE_SIZE == 256


class TestCanonicalEncoding:
    @pytest.mark.parametrize(
        "a, b",
        [
            ((1, "2"), (1, 2)),
            (("ab", "c"), ("a", "bc")),
            ((b"ab",), ("ab",)),
            ((0,), (False,)),
            ((1,), (True,)),
            ((None,), ("",)),
            (((1, 2), 3), (1, (2, 3))),
        ],
    )
    def test_distinct_values_encode_distinctly(self, a, b):
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_lists_and_tuples_equivalent(self):
        assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))

    def test_unsupported_type_rejected(self):
        with pytest.raises(CryptoError):
            canonical_bytes({"a": 1})

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.floats(allow_nan=False),
                st.text(max_size=20),
                st.binary(max_size=20),
            ),
            lambda children: st.tuples(children, children),
            max_leaves=10,
        )
    )
    def test_property_encoding_is_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)
