"""Unit tests for variant assignment and proactive recovery."""

import pytest

from repro.byzantine.behaviors import DroppingBehavior, HonestBehavior
from repro.errors import ConfigurationError
from repro.overlay.config import OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.resilience.recovery import ProactiveRecovery
from repro.resilience.variants import (
    VariantPool,
    assign_variants,
    assignment_score,
    brute_force_assignment,
    connectivity_under_variant_failure,
)
from repro.topology.generators import clique, line, ring

FAST = OverlayConfig(link_bandwidth_bps=None)


class TestConnectivityMetric:
    def test_no_failures_full_connectivity(self):
        topo = ring(5)
        assignment = {n: 0 for n in topo.nodes}
        assert connectivity_under_variant_failure(topo, assignment, 1) == 1.0

    def test_all_same_variant_fails_everything(self):
        topo = ring(5)
        assignment = {n: 0 for n in topo.nodes}
        # All nodes fail; no surviving pairs: vacuous 1.0 by convention.
        assert connectivity_under_variant_failure(topo, assignment, 0) == 1.0

    def test_line_cut_in_middle(self):
        topo = line(4)  # 1-2-3-4
        assignment = {1: 0, 2: 1, 3: 0, 4: 0}
        # Variant 1 fails: node 2 dies; survivors 1 | 3-4: 1 of 3 pairs.
        score = connectivity_under_variant_failure(topo, assignment, 1)
        assert score == pytest.approx(1 / 3)

    def test_clique_always_connected(self):
        topo = clique(5)
        assignment = {n: n % 2 for n in topo.nodes}
        assert connectivity_under_variant_failure(topo, assignment, 0) == 1.0
        assert connectivity_under_variant_failure(topo, assignment, 1) == 1.0


class TestAssignment:
    def test_greedy_matches_brute_force_on_ring(self):
        topo = ring(6)
        greedy = assign_variants(topo, variants=2)
        _, best_score = brute_force_assignment(topo, variants=2)
        greedy_score = assignment_score(topo, greedy, 2)
        assert greedy_score[0] == pytest.approx(best_score[0], abs=0.02)

    def test_ring_alternating_is_optimal_structure(self):
        """On an even ring, the optimum alternates variants so a variant
        failure leaves isolated-but-small fragments symmetric across
        variants; greedy should find something equally good."""
        topo = ring(6)
        assignment = assign_variants(topo, variants=2)
        expected, worst = assignment_score(topo, assignment, 2)
        naive = {n: 0 if n <= 3 else 1 for n in topo.nodes}  # contiguous halves
        naive_expected, _ = assignment_score(topo, naive, 2)
        assert expected >= naive_expected

    def test_more_variants_never_hurt(self):
        topo = ring(8)
        two = assignment_score(topo, assign_variants(topo, 2), 2)
        four = assignment_score(topo, assign_variants(topo, 4), 4)
        assert four[0] >= two[0] - 1e-9

    def test_single_variant_allowed(self):
        topo = ring(4)
        assignment = assign_variants(topo, variants=1)
        assert set(assignment.values()) == {0}

    def test_invalid_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_variants(ring(4), variants=0)

    def test_global_cloud_assignment_quality(self):
        from repro.topology import global_cloud

        topo = global_cloud.topology()
        assignment = assign_variants(topo, variants=3)
        expected, worst = assignment_score(topo, assignment, 3)
        # The 3-connected cloud should stay fully connected when any one
        # of three well-assigned variants fails.
        assert worst == 1.0

    def test_brute_force_size_guard(self):
        with pytest.raises(ConfigurationError):
            brute_force_assignment(ring(12), 2)


class TestVariantPool:
    def test_fresh_builds_never_repeat(self):
        pool = VariantPool(families=3)
        builds = {pool.fresh(i % 3) for i in range(50)}
        assert len(builds) == 50

    def test_family_wraps(self):
        pool = VariantPool(families=2)
        family, _ = pool.fresh(5)
        assert family == 1

    def test_invalid_families(self):
        with pytest.raises(ConfigurationError):
            VariantPool(families=0)


class TestProactiveRecovery:
    def test_every_node_recovered_once_per_period(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.start()
        net.run(8.6)
        assert recovery.recoveries_completed == 4

    def test_recovery_cleans_compromise(self):
        net = OverlayNetwork.build(clique(4), FAST)
        net.compromise(2, DroppingBehavior())
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.start()
        net.run(8.6)
        assert recovery.compromises_cleaned == 1
        assert isinstance(net.node(2).behavior, HonestBehavior)

    def test_fresh_variant_each_recovery(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        before = dict(recovery.current_variant)
        recovery.start()
        net.run(8.6)
        after = recovery.current_variant
        assert all(before[n] != after[n] for n in before)

    def test_network_stays_live_during_staggered_recovery(self):
        """Flooding delivers even while one node at a time reboots."""
        net = OverlayNetwork.build(clique(5), FAST)
        recovery = ProactiveRecovery(net, period=10.0, downtime=0.5)
        recovery.start()
        delivered_expected = 0
        for i in range(20):
            source = net.node(1)
            if not source.crashed and not net.node(5).crashed:
                source.send_priority(5, expire_after=5.0)
                delivered_expected += 1
            net.run(0.5)
        net.run(5.0)
        assert net.delivered_count(1, 5) >= delivered_expected - 2

    def test_overlapping_downtime_rejected(self):
        net = OverlayNetwork.build(clique(4), FAST)
        with pytest.raises(ConfigurationError):
            ProactiveRecovery(net, period=1.0, downtime=0.5)

    def test_stop_halts_schedule(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.start()
        net.run(2.5)
        recovery.stop()
        count = recovery.recoveries_completed
        net.run(10.0)
        assert recovery.recoveries_completed <= count + 1  # in-flight restore only

    def test_stop_cancels_queued_events(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.start()
        net.run(2.5)
        recovery.stop()
        # The queued take-down (and any queued restore) was cancelled, not
        # left in the heap as a latent no-op.
        assert recovery._next_event is None
        assert recovery._restore_events == {}
        after_count = recovery.recoveries_completed
        net.run(20.0)
        assert recovery.recoveries_completed == after_count

    def test_stop_mid_downtime_restores_node_immediately(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=1.0)
        recovery.start()
        net.run(2.2)  # first node (id 1) was taken down at t=2.0
        assert net.node(1).crashed
        recovery.stop()
        # stop() must never strand a node in its reinstall downtime.
        assert not net.node(1).crashed
        assert recovery.recoveries_completed == 1

    def test_stop_before_start_is_harmless(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.stop()
        net.run(10.0)
        assert recovery.recoveries_completed == 0

    def test_restart_after_stop(self):
        net = OverlayNetwork.build(clique(4), FAST)
        recovery = ProactiveRecovery(net, period=8.0, downtime=0.5)
        recovery.start()
        net.run(2.5)
        recovery.stop()
        done = recovery.recoveries_completed
        recovery.start()
        net.run(8.5)
        assert recovery.recoveries_completed > done
