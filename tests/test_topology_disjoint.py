"""Unit tests for minimum-cost K node-disjoint paths."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology.disjoint import (
    DisjointPathError,
    best_effort_disjoint_paths,
    k_node_disjoint_paths,
    max_node_disjoint_paths,
)
from repro.topology.generators import clique, line, random_connected, ring
from repro.topology.graph import Topology


def assert_node_disjoint(paths, source, dest):
    """All paths run source→dest and share no intermediate node."""
    interior = []
    for path in paths:
        assert path[0] == source
        assert path[-1] == dest
        assert len(set(path)) == len(path)  # simple path
        interior.extend(path[1:-1])
    assert len(interior) == len(set(interior))


@pytest.fixture
def two_disjoint():
    """Two disjoint routes 1→4: via 2 (cost 2) and via 3 (cost 3)."""
    topo = Topology()
    topo.add_edge(1, 2, 1.0)
    topo.add_edge(2, 4, 1.0)
    topo.add_edge(1, 3, 1.5)
    topo.add_edge(3, 4, 1.5)
    return topo


class TestKPaths:
    def test_single_path_is_shortest(self, two_disjoint):
        paths = k_node_disjoint_paths(two_disjoint, 1, 4, 1)
        assert paths == [[1, 2, 4]]

    def test_two_paths_are_disjoint(self, two_disjoint):
        paths = k_node_disjoint_paths(two_disjoint, 1, 4, 2)
        assert_node_disjoint(paths, 1, 4)
        assert sorted(len(p) for p in paths) == [3, 3]

    def test_too_many_paths_raises(self, two_disjoint):
        with pytest.raises(DisjointPathError):
            k_node_disjoint_paths(two_disjoint, 1, 4, 3)

    def test_trap_topology_requires_rerouting(self):
        """The classic Suurballe trap: the shortest path must be partially
        abandoned to achieve two disjoint paths of minimum total cost."""
        topo = Topology()
        topo.add_edge("s", "a", 1.0)
        topo.add_edge("a", "b", 1.0)
        topo.add_edge("b", "t", 1.0)
        topo.add_edge("s", "b", 10.0)
        topo.add_edge("a", "t", 10.0)
        # Greedy: take s-a-b-t (cost 3), then no disjoint path remains.
        # Optimal: s-a-t (11) + s-b-t (11) = 22.
        paths = k_node_disjoint_paths(topo, "s", "t", 2)
        assert_node_disjoint(paths, "s", "t")
        total = sum(topo.path_weight(p) for p in paths)
        assert total == pytest.approx(22.0)

    def test_total_cost_is_minimal_on_clique(self):
        topo = clique(5, weight=1.0)
        paths = k_node_disjoint_paths(topo, 1, 2, 3)
        assert_node_disjoint(paths, 1, 2)
        # Best: direct (1) + two 2-hop detours (2 + 2) = 5 edges total.
        assert sum(len(p) - 1 for p in paths) == 5

    def test_direct_edge_plus_detour(self):
        topo = ring(5)
        paths = k_node_disjoint_paths(topo, 1, 2, 2)
        assert_node_disjoint(paths, 1, 2)
        assert [1, 2] in paths

    def test_paths_sorted_by_weight(self, two_disjoint):
        paths = k_node_disjoint_paths(two_disjoint, 1, 4, 2)
        weights = [two_disjoint.path_weight(p) for p in paths]
        assert weights == sorted(weights)

    def test_invalid_k_rejected(self, two_disjoint):
        with pytest.raises(TopologyError):
            k_node_disjoint_paths(two_disjoint, 1, 4, 0)

    def test_same_source_dest_rejected(self, two_disjoint):
        with pytest.raises(TopologyError):
            k_node_disjoint_paths(two_disjoint, 1, 1, 1)

    def test_unknown_nodes_rejected(self, two_disjoint):
        with pytest.raises(TopologyError):
            k_node_disjoint_paths(two_disjoint, 1, 99, 1)
        with pytest.raises(TopologyError):
            k_node_disjoint_paths(two_disjoint, 99, 1, 1)

    def test_deterministic(self, two_disjoint):
        a = k_node_disjoint_paths(two_disjoint, 1, 4, 2)
        b = k_node_disjoint_paths(two_disjoint, 1, 4, 2)
        assert a == b


class TestMaxDisjoint:
    def test_ring_has_two(self):
        assert max_node_disjoint_paths(ring(6), 1, 4) == 2

    def test_line_has_one(self):
        assert max_node_disjoint_paths(line(4), 1, 4) == 1

    def test_clique_has_n_minus_one(self):
        assert max_node_disjoint_paths(clique(6), 1, 2) == 5

    def test_disconnected_has_zero(self):
        topo = Topology()
        topo.add_edge(1, 2, 1.0)
        topo.add_edge(3, 4, 1.0)
        assert max_node_disjoint_paths(topo, 1, 3) == 0

    def test_cut_vertex_limits_connectivity(self):
        """Two triangles joined at a single node: connectivity 1."""
        topo = Topology()
        for a, b in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
            topo.add_edge(a, b, 1.0)
        assert max_node_disjoint_paths(topo, 1, 5) == 1


class TestBestEffort:
    def test_returns_what_exists(self):
        topo = line(4)
        paths = best_effort_disjoint_paths(topo, 1, 4, 3)
        assert paths == [[1, 2, 3, 4]]

    def test_caps_at_k(self):
        topo = clique(6)
        paths = best_effort_disjoint_paths(topo, 1, 2, 2)
        assert len(paths) == 2

    def test_disconnected_returns_empty(self):
        topo = Topology()
        topo.add_edge(1, 2, 1.0)
        topo.add_node(3)
        assert best_effort_disjoint_paths(topo, 1, 3, 2) == []


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
    def test_property_random_graphs(self, seed, k):
        rng = random.Random(seed)
        topo = random_connected(10, extra_edges=12, rng=rng)
        nodes = sorted(topo.nodes)
        source, dest = nodes[0], nodes[-1]
        available = max_node_disjoint_paths(topo, source, dest)
        if available >= k:
            paths = k_node_disjoint_paths(topo, source, dest, k)
            assert len(paths) == k
            assert_node_disjoint(paths, source, dest)
        else:
            with pytest.raises(DisjointPathError):
                k_node_disjoint_paths(topo, source, dest, k)
            paths = best_effort_disjoint_paths(topo, source, dest, k)
            assert len(paths) == available
            if paths:
                assert_node_disjoint(paths, source, dest)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_k1_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        topo = random_connected(8, extra_edges=8, rng=rng)
        nodes = sorted(topo.nodes)
        source, dest = nodes[0], nodes[-1]
        [path] = k_node_disjoint_paths(topo, source, dest, 1)
        shortest = topo.shortest_path(source, dest)
        assert topo.path_weight(path) == pytest.approx(topo.path_weight(shortest))
