"""Integration tests: full overlay networks end to end."""

import pytest

from repro.byzantine.behaviors import (
    CorruptingBehavior,
    DelayingBehavior,
    DroppingBehavior,
    DuplicatingBehavior,
    SelectiveDropBehavior,
)
from repro.errors import ProtocolError
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import clique, line, ring
from repro.topology import global_cloud

FAST = OverlayConfig(link_bandwidth_bps=None)           # no pacing: logic tests
PACED = OverlayConfig(link_bandwidth_bps=1e6)           # 1 Mbps scaled links


def build(topo, config=FAST, seed=0):
    return OverlayNetwork.build(topo, config, seed=seed)


def drain_reliable(net, node, dest, count, size=1000, method=None, interval=0.02):
    """Send ``count`` reliable messages, retrying under back-pressure."""
    sent = [0]

    def tick():
        while sent[0] < count and node.send_reliable(dest, size_bytes=size, method=method):
            sent[0] += 1
        if sent[0] < count:
            net.sim.schedule(interval, tick)

    tick()
    return sent


class TestPriorityDelivery:
    def test_flooding_delivers_to_destination(self):
        net = build(ring(6))
        net.client(1).send_priority(4)
        net.run(1.0)
        assert net.delivered_count(1, 4) == 1

    def test_flooding_delivers_exactly_once(self):
        net = build(clique(5))
        for _ in range(10):
            net.client(1).send_priority(3)
        net.run(1.0)
        assert net.delivered_count(1, 3) == 10

    def test_latency_close_to_shortest_path(self):
        topo = global_cloud.topology()
        net = build(topo)
        net.client(7).send_priority(9)
        net.run(2.0)
        recorder = net.flow_latency(7, 9)
        shortest = topo.path_weight(topo.shortest_path(7, 9))
        assert recorder.count == 1
        assert shortest <= recorder.mean() < shortest + 0.050

    def test_k_paths_delivery(self):
        net = build(global_cloud.topology())
        for k in (1, 2, 3):
            net.client(1).send_priority(9, method=DisseminationMethod.k_paths(k))
        net.run(2.0)
        assert net.delivered_count(1, 9) == 3

    def test_expired_messages_not_delivered(self):
        net = build(ring(6, weight=0.200))  # 200 ms per hop
        net.client(1).send_priority(4, expire_after=0.100)  # expires in flight
        net.run(5.0)
        assert net.delivered_count(1, 4) == 0

    def test_crashed_source_cannot_send(self):
        net = build(ring(4))
        net.crash(1)
        with pytest.raises(ProtocolError):
            net.node(1).send_priority(3)


class TestReliableDelivery:
    def test_in_order_exactly_once(self):
        net = build(ring(5), PACED)
        received = []
        net.node(3).on_deliver = lambda m: received.append(m.seq)
        drain_reliable(net, net.node(1), 3, 50)
        net.run(20.0)
        assert received == list(range(1, 51))

    def test_k_paths_reliable(self):
        net = build(global_cloud.topology(), PACED)
        method = DisseminationMethod.k_paths(2)
        drain_reliable(net, net.node(7), 9, 30, method=method)
        net.run(20.0)
        assert net.delivered_count(7, 9) == 30

    def test_backpressure_blocks_source(self):
        config = OverlayConfig(link_bandwidth_bps=1e6, reliable_buffer=8)
        net = build(ring(4), config)
        node = net.node(1)
        accepted = 0
        for _ in range(50):
            if node.send_reliable(3, size_bytes=1000):
                accepted += 1
        assert accepted == 8  # buffer filled; back-pressure to the app
        net.run(10.0)
        assert node.reliable_can_send(3)  # cleared after E2E acks

    def test_bidirectional_flows(self):
        net = build(ring(5), PACED)
        drain_reliable(net, net.node(1), 3, 20)
        drain_reliable(net, net.node(3), 1, 20)
        net.run(20.0)
        assert net.delivered_count(1, 3) == 20
        assert net.delivered_count(3, 1) == 20

    def test_no_e2e_ack_ablation_still_delivers(self):
        config = OverlayConfig(link_bandwidth_bps=1e6, e2e_acks_enabled=False)
        net = build(ring(5), config)
        drain_reliable(net, net.node(1), 3, 30)
        net.run(30.0)
        assert net.delivered_count(1, 3) == 30


class TestLossTolerance:
    def test_reliable_flow_survives_heavy_loss(self):
        config = OverlayConfig(link_bandwidth_bps=1e6, channel_loss_rate=0.25)
        net = build(ring(5), config, seed=7)
        received = []
        net.node(3).on_deliver = lambda m: received.append(m.seq)
        drain_reliable(net, net.node(1), 3, 40)
        net.run(60.0)
        assert received == list(range(1, 41))

    def test_priority_flooding_under_loss(self):
        """Flooding + reliable links deliver despite loss."""
        config = OverlayConfig(link_bandwidth_bps=1e6, channel_loss_rate=0.2)
        net = build(clique(5), config, seed=8)
        for _ in range(20):
            net.client(1).send_priority(3, expire_after=20.0)
        net.run(30.0)
        assert net.delivered_count(1, 3) == 20


class TestByzantineForwarders:
    def test_flooding_overcomes_black_hole(self):
        """K-1 = any number of droppers: flooding delivers while a correct
        path exists."""
        net = build(clique(5))
        net.compromise(2, DroppingBehavior())
        net.compromise(3, DroppingBehavior())
        for _ in range(5):
            net.client(1).send_priority(5)
        net.run(2.0)
        assert net.delivered_count(1, 5) == 5

    def test_k2_paths_overcome_one_compromised_node(self):
        net = build(clique(5))
        net.compromise(2, DroppingBehavior())
        for _ in range(5):
            net.client(1).send_priority(5, method=DisseminationMethod.k_paths(2))
        net.run(2.0)
        assert net.delivered_count(1, 5) == 5

    def test_k1_path_fails_through_compromised_node(self):
        """Single-path routing through a black hole loses the message."""
        topo = line(3)  # 1 - 2 - 3: node 2 is unavoidable
        net = build(topo)
        net.compromise(2, DroppingBehavior())
        net.client(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0

    def test_flooding_fails_only_when_no_correct_path(self):
        """Optimality boundary: cut all correct paths and delivery stops."""
        net = build(ring(4))
        net.compromise(2, DroppingBehavior())
        net.compromise(4, DroppingBehavior())
        net.client(1).send_priority(3)
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0

    def test_corrupted_messages_rejected_by_signature(self):
        topo = line(3)
        net = build(topo)
        net.compromise(2, CorruptingBehavior(mutate_field="priority"))
        net.client(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0
        assert net.node(3).invalid_messages_rejected > 0

    def test_replay_duplicates_suppressed(self):
        net = build(ring(4), PACED)
        net.compromise(2, DuplicatingBehavior(copies=3))
        for _ in range(10):
            net.client(1).send_priority(3)
        net.run(5.0)
        assert net.delivered_count(1, 3) == 10  # exactly once despite replays

    def test_delaying_forwarder_cannot_stop_flooding(self):
        net = build(ring(4))
        net.compromise(2, DelayingBehavior(delay=5.0))
        net.client(1).send_priority(3)
        net.run(2.0)
        # Delivered promptly via the other direction of the ring.
        assert net.delivered_count(1, 3) == 1

    def test_selective_drop_of_one_flow(self):
        net = build(line(3))
        net.compromise(2, SelectiveDropBehavior(lambda m: m.flow == (1, 3)))
        net.client(1).send_priority(3, method=DisseminationMethod.k_paths(1))
        net.run(1.0)
        net.client(3).send_priority(1, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 3) == 0
        assert net.delivered_count(3, 1) == 1

    def test_reliable_flooding_overcomes_byzantine_forwarder(self):
        net = build(clique(4), PACED)
        net.compromise(2, DroppingBehavior())
        drain_reliable(net, net.node(1), 4, 20)
        net.run(20.0)
        assert net.delivered_count(1, 4) == 20


class TestCrashRecovery:
    def test_reliable_survives_partition_and_recovery(self):
        net = build(ring(4), PACED)
        sent = drain_reliable(net, net.node(1), 3, 100)
        net.run(0.4)
        net.crash(2)
        net.crash(4)  # full partition between 1 and 3
        net.run(4.0)
        during = net.delivered_count(1, 3)
        net.recover(2)
        net.run(30.0)
        assert sent[0] == 100
        assert net.delivered_count(1, 3) == 100
        assert during < 100

    def test_delivery_remains_in_order_across_crash(self):
        net = build(ring(4), PACED)
        received = []
        net.node(3).on_deliver = lambda m: received.append(m.seq)
        drain_reliable(net, net.node(1), 3, 60)
        net.run(1.5)
        net.crash(2)
        net.run(3.0)
        net.recover(2)
        net.run(30.0)
        assert received == list(range(1, 61))

    def test_priority_messages_reroute_around_crash(self):
        net = build(ring(4))
        net.crash(2)
        net.client(1).send_priority(3)
        net.run(2.0)
        assert net.delivered_count(1, 3) == 1


class TestLinkMonitoring:
    def test_failed_link_detected_and_routed_around(self):
        net = build(ring(4), PACED)
        net.fail_link(1, 2)
        net.run(6.0)  # hellos time out, weights flood
        routing = net.node(1).routing
        assert not routing.is_link_usable(1, 2)
        # K=1 routing now avoids the dead link.
        net.client(1).send_priority(2, method=DisseminationMethod.k_paths(1))
        net.run(2.0)
        assert net.delivered_count(1, 2) == 1

    def test_restored_link_comes_back(self):
        net = build(ring(4), PACED)
        net.fail_link(1, 2)
        net.run(6.0)
        assert not net.node(3).routing.is_link_usable(1, 2)
        net.restore_link(1, 2)
        net.run(6.0)
        assert net.node(3).routing.is_link_usable(1, 2)


class TestFairnessUnderAttack:
    def test_correct_priority_flow_keeps_its_share(self):
        net = build(ring(4), PACED, seed=4)
        honest = net.node(1)
        attacker = net.node(2)

        def honest_tick():
            if net.sim.now < 10.0:
                honest.send_priority(3, size_bytes=1186, priority=5)
                net.sim.schedule(0.0475, honest_tick)  # ~0.2 Mbps

        def spam_tick():
            if net.sim.now < 10.0:
                for _ in range(4):
                    attacker.send_priority(4, size_bytes=1186, priority=10)
                net.sim.schedule(0.02, spam_tick)  # ~1.9 Mbps demand

        honest_tick()
        spam_tick()
        net.run(14.0)
        goodput = net.flow_goodput(1, 3).average_mbps(3.0, 10.0)
        # The honest flow requests less than its fair share and gets it.
        assert goodput > 0.8 * 0.2
