"""Tests for traffic generators, the monitoring workload, and the harness."""

import pytest

from repro.errors import ConfigurationError
from repro.messaging.message import Semantics
from repro.overlay.config import DisseminationMethod, OverlayConfig
from repro.overlay.network import OverlayNetwork
from repro.topology.generators import ring
from repro.workloads.experiment import (
    DEFAULT_PAYLOAD,
    SCALE,
    SCALED_LINK_BPS,
    Deployment,
)
from repro.workloads.monitoring import DEFAULT_CLASSES, MonitoringWorkload
from repro.workloads.traffic import CbrTraffic, PoissonTraffic, ReliableBacklogTraffic

PACED = OverlayConfig(link_bandwidth_bps=1e6)


class TestCbrTraffic:
    def test_rate_is_respected(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = CbrTraffic(net, 1, 3, rate_bps=2e5, size_bytes=882)
        flow.start()
        net.run(10.0)
        goodput = net.flow_goodput(1, 3).average_mbps(1.0, 10.0)
        assert goodput == pytest.approx(0.2, rel=0.15)

    def test_priority_cycle(self):
        net = OverlayNetwork.build(ring(4), PACED)
        seen = []
        net.node(3).on_deliver = lambda m: seen.append(m.priority)
        flow = CbrTraffic(
            net, 1, 3, rate_bps=1e5, priority_cycle=list(range(1, 11))
        )
        flow.start()
        net.run(15.0)
        assert set(seen) == set(range(1, 11))

    def test_reliable_semantics_counts_backpressure(self):
        config = OverlayConfig(link_bandwidth_bps=1e5, reliable_buffer=4)
        net = OverlayNetwork.build(ring(4), config)
        flow = CbrTraffic(net, 1, 3, rate_bps=5e5, semantics=Semantics.RELIABLE)
        flow.start()
        net.run(5.0)
        assert flow.backpressured > 0

    def test_invalid_rate(self):
        net = OverlayNetwork.build(ring(4), PACED)
        with pytest.raises(ConfigurationError):
            CbrTraffic(net, 1, 3, rate_bps=0)

    def test_schedule_start_stop(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = CbrTraffic(net, 1, 3, rate_bps=1e5)
        flow.schedule(start_at=1.0, stop_at=2.0)
        net.run(5.0)
        sent = flow.messages_sent
        assert sent > 0
        net.run(5.0)
        assert flow.messages_sent == sent


class TestPoissonTraffic:
    def test_mean_rate(self):
        net = OverlayNetwork.build(ring(4), PACED)
        flow = PoissonTraffic(net, 1, 3, rate_msgs_per_sec=20.0, size_bytes=200)
        flow.start()
        net.run(20.0)
        assert flow.messages_sent == pytest.approx(400, rel=0.25)

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            net = OverlayNetwork.build(ring(4), PACED, seed=5)
            flow = PoissonTraffic(net, 1, 3, rate_msgs_per_sec=10.0)
            flow.start()
            net.run(10.0)
            counts.append(flow.messages_sent)
        assert counts[0] == counts[1]


class TestReliableBacklog:
    def test_completes_exact_count(self):
        net = OverlayNetwork.build(ring(4), PACED)
        transfer = ReliableBacklogTraffic(net, 1, 3, count=80)
        transfer.start()
        net.run(30.0)
        assert transfer.done
        assert net.delivered_count(1, 3) == 80


class TestMonitoringWorkload:
    def test_all_nodes_report_to_sink(self):
        net = OverlayNetwork.build(ring(5), PACED)
        workload = MonitoringWorkload(net, sinks=[1], method=DisseminationMethod.flooding())
        workload.start()
        net.run(8.0)
        for reporter in (2, 3, 4, 5):
            assert net.delivered_count(reporter, 1) > 0

    def test_view_staleness_bounded_by_period(self):
        net = OverlayNetwork.build(ring(5), PACED)
        workload = MonitoringWorkload(net, sinks=[1], method=DisseminationMethod.flooding())
        workload.start()
        net.run(10.0)
        staleness = workload.view_staleness(sink=1, at_time=10.0)
        assert len(staleness) == 4
        assert max(staleness) < 3.0  # status class period is 1 s (+jitter)

    def test_method_switch(self):
        net = OverlayNetwork.build(ring(5), PACED)
        workload = MonitoringWorkload(net, sinks=[1])
        workload.start()
        net.run(3.0)
        workload.set_method(DisseminationMethod.flooding())
        net.run(3.0)
        assert workload.messages_sent > 0

    def test_default_classes_shape(self):
        assert all(c.size_bytes < 3500 for c in DEFAULT_CLASSES)
        assert all(1.0 <= c.period <= 3.0 for c in DEFAULT_CLASSES)


class TestDeployment:
    def test_scaled_capacity(self):
        assert SCALED_LINK_BPS == pytest.approx(10e6 / SCALE)

    def test_flow_result_shape(self):
        deployment = Deployment(seed=1)
        deployment.add_flow(9, 11, rate_fraction=0.3)
        deployment.run(10.0)
        result = deployment.flow_result(9, 11, window=(2.0, 10.0))
        assert result.delivered > 0
        assert result.goodput_fraction_of_capacity == pytest.approx(0.3, rel=0.25)
        assert result.mean_latency > 0

    def test_dissemination_cost_counts_hops(self):
        deployment = Deployment(seed=2)
        deployment.network.client(1).send_priority(9)
        deployment.run(2.0)
        # Flooding on the 32-edge cloud: cost between engineered (32)
        # and naive (64).
        assert 30.0 <= deployment.dissemination_cost() <= 64.0

    def test_fair_share(self):
        from repro.workloads.experiment import WIRE_BYTES

        deployment = Deployment(seed=3)
        efficiency = DEFAULT_PAYLOAD / WIRE_BYTES
        assert deployment.fair_share_mbps(5) == pytest.approx(0.2 * efficiency)
        assert deployment.fair_share_mbps(1) == pytest.approx(1.0 * efficiency)
