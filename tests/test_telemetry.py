"""Unit and integration tests for the telemetry subsystem."""

import json
import time

import pytest

from repro.cli import main
from repro.sim.engine import Simulator
from repro.telemetry.metrics import (
    BoundedTimeSeries,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiling import EventLoopProfiler, payload_kind
from repro.telemetry.report import build_report, flatten, to_csv
from repro.telemetry.tracing import NULL_SPAN, TraceCollector


class TestMetricsRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.series("s") is registry.series("s")

    def test_counter_values_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra").add(1)
        registry.counter("alpha").add(2)
        assert list(registry.counter_values()) == ["alpha", "zebra"]

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert registry.snapshot()["gauges"]["depth"] == 3.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.histogram("h").observe(1.0)
        registry.series("s").record(0.0, 1.0)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "series"}
        assert snap["counters"] == {"c": 3}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["series"]["s"]["samples"] == 1
        json.dumps(snap)  # must be JSON-serializable as-is


class TestHistogram:
    def test_percentile_bounds(self):
        hist = Histogram("h")
        for v in [1.0, 2.0, 3.0]:
            hist.observe(v)
        with pytest.raises(ValueError):
            hist.percentile(101.0)
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(100.0) == 3.0

    def test_percentile_stays_within_observed_range(self):
        hist = Histogram("h")
        for v in [0.2, 0.3, 0.4, 0.5]:
            hist.observe(v)
        for p in (10.0, 50.0, 90.0, 99.0):
            assert 0.2 <= hist.percentile(p) <= 0.5

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 0.5))

    def test_empty_snapshot(self):
        assert Histogram("h").snapshot()["count"] == 0

    def test_streaming_summary(self):
        hist = Histogram("h")
        for v in [1.0, 3.0]:
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(4.0)
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)


class TestBoundedTimeSeries:
    def test_eviction_is_bounded_and_counted(self):
        series = BoundedTimeSeries("s", maxlen=4)
        for i in range(10):
            series.record(float(i), float(i))
        assert len(series) == 4
        assert series.dropped == 6
        assert series.times() == [6.0, 7.0, 8.0, 9.0]
        assert series.last() == (9.0, 9.0)

    def test_registry_series_maxlen(self):
        registry = MetricsRegistry(series_maxlen=2)
        series = registry.series("s")
        for i in range(5):
            series.record(float(i), 1.0)
        assert len(series) == 2
        assert registry.series("custom", maxlen=8).maxlen == 8


class TestTracing:
    def test_disabled_span_is_the_null_singleton(self):
        collector = TraceCollector()
        assert collector.span("anything") is NULL_SPAN
        with collector.span("anything"):
            pass
        assert collector.spans == []

    def test_disabled_event_records_nothing(self):
        collector = TraceCollector()
        collector.event(1.0, "x")
        assert collector.events == []

    def test_enabled_spans_and_events(self):
        collector = TraceCollector()
        collector.enable()
        with collector.span("work"):
            pass
        collector.event(1.0, "fault", "detail")
        collector.event(2.0, "fault")
        assert collector.span_summary()["work"]["count"] == 1
        assert collector.event_summary() == {"fault": 2}
        assert collector.query_events("fault", since=1.5) == [(2.0, "fault", "")]

    def test_bounded_records(self):
        collector = TraceCollector(max_records=2)
        collector.enable()
        for i in range(5):
            collector.event(float(i), "e")
        assert len(collector.events) == 2
        assert collector.dropped == 3
        collector.clear()
        assert collector.events == [] and collector.dropped == 0

    def test_disabled_overhead_is_negligible(self):
        # The near-zero-overhead contract: a trace call on a disabled
        # collector must cost no more than a handful of attribute checks.
        # Generous bound (5x a bare loop) so CI scheduling noise can't
        # flake this, while still catching accidental allocation on the
        # disabled path.
        collector = TraceCollector()
        iterations = 50_000

        def baseline():
            start = time.perf_counter()
            for _ in range(iterations):
                pass
            return time.perf_counter() - start

        def traced():
            start = time.perf_counter()
            for _ in range(iterations):
                collector.event(0.0, "x")
            return time.perf_counter() - start

        base = min(baseline() for _ in range(3))
        cost = min(traced() for _ in range(3))
        assert cost < max(5 * base, 0.05)


class TestEventLoopProfiler:
    def test_simulator_profiling_records_callbacks(self):
        sim = Simulator()
        profiler = sim.enable_profiling()

        def tick():
            pass

        for i in range(5):
            sim.schedule(float(i), tick)
        sim.run()
        snap = profiler.snapshot()
        [(key, cell)] = snap.items()
        assert "tick" in key
        assert cell["count"] == 5
        assert profiler.total_events() == 5
        sim.disable_profiling()
        assert sim.profiler is None

    def test_snapshot_ranked_by_total_time(self):
        profiler = EventLoopProfiler()
        profiler.record("cheap", 0.001)
        profiler.record("dear", 0.5)
        profiler.record("cheap", 0.001)
        assert list(profiler.snapshot()) == ["dear", "cheap"]

    def test_payload_kind_classification(self):
        from repro.messaging.message import (
            E2eAck,
            Hello,
            Message,
            NeighborAck,
            Semantics,
        )

        msg = Message(source=1, dest=2, seq=1, semantics=Semantics.PRIORITY)
        assert payload_kind(msg) == "priority"
        msg_r = Message(source=1, dest=2, seq=1, semantics=Semantics.RELIABLE)
        assert payload_kind(msg_r) == "reliable"
        assert payload_kind(Hello(1, 1)) == "hello"
        assert payload_kind(E2eAck(dest=2, stamp=1, cumulative=())) == "e2e_ack"
        assert payload_kind(NeighborAck(sender=1, entries=())) == "neighbor_ack"
        assert payload_kind(object()) == "object"


def _run_deployment(seconds=2.0, seed=3):
    from repro.topology import global_cloud
    from repro.workloads.experiment import Deployment

    deployment = Deployment(seed=seed)
    flows = global_cloud.EVALUATION_FLOWS[:2]
    for source, dest in flows:
        deployment.add_flow(source, dest, rate_fraction=0.3)
    deployment.run(seconds)
    return deployment, flows


class TestEndToEnd:
    def test_snapshot_is_deterministic_across_same_seed_runs(self):
        first, flows = _run_deployment()
        second, _ = _run_deployment()
        snap_a = first.network.stats.snapshot()
        snap_b = second.network.stats.snapshot()
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(
            snap_b, sort_keys=True
        )
        # The snapshot carries the per-message-type and crypto accounting
        # the stats CLI promises.
        counters = snap_a["counters"]
        assert counters["crypto.sign"] > 0
        assert counters["crypto.verify"] > 0
        assert counters["crypto.mac_sign"] > 0
        assert snap_a["message_types"]["priority"]["messages"] > 0
        assert snap_a["message_types"]["hello"]["bytes"] > 0

    def test_report_builder(self):
        deployment, flows = _run_deployment()
        report = build_report(
            deployment, flows, params={"seed": 3}, include_profile=True
        )
        assert report["params"] == {"seed": 3}
        assert len(report["flows"]) == 2
        for entry in report["flows"]:
            assert entry["delivered"] > 0
            assert entry["latency"]["p50"] <= entry["latency"]["p99"]
        assert report["dissemination_cost"] > 0
        assert report["profile"]["event_loop"] == {}  # profiling never enabled
        json.dumps(report)

    def test_flatten_and_csv(self):
        payload = {"b": {"x": 1}, "a": [10, {"y": None}], "c": 'quote"me'}
        flat = flatten(payload)
        assert flat == [
            ("a.0", 10),
            ("a.1.y", None),
            ("b.x", 1),
            ("c", 'quote"me'),
        ]
        csv_text = to_csv(payload)
        lines = csv_text.strip().split("\n")
        assert lines[0] == "key,value"
        assert lines[1] == "a.0,10"
        assert lines[2] == "a.1.y,"
        assert lines[4] == 'c,"quote""me"'

    def test_cli_round_trip_matches_in_process_registry(self, capsys):
        args = ["stats", "--seed", "3", "--seconds", "2", "--flows", "2",
                "--rate", "0.3"]
        assert main(args) == 0
        report = json.loads(capsys.readouterr().out)
        deployment, _ = _run_deployment(seconds=2.0, seed=3)
        in_process = deployment.network.stats.snapshot()
        assert report["stats"]["counters"] == in_process["counters"]
        assert report["stats"]["message_types"] == in_process["message_types"]
        assert report["params"]["semantics"] == "priority"
        assert "profile" not in report  # deterministic by default

    def test_cli_csv_and_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.csv"
        args = ["stats", "--seed", "3", "--seconds", "1", "--flows", "1",
                "--format", "csv", "--output", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert lines[0] == "key,value"
        assert any(line.startswith("stats.counters.crypto.sign,") for line in lines)

    def test_cli_trace_includes_event_summary(self, capsys):
        args = ["stats", "--seed", "3", "--seconds", "1", "--flows", "1",
                "--trace"]
        assert main(args) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["trace"]["enabled"] is True
